(** CUDA-Runtime-style host API (paper §3: "the proposed compilation model
    is wrapped by an API front-end for heterogeneous computing").

    Typical use:
    {[
      let dev = Api.create_device () in
      let m = Api.load_module dev ptx_source in
      let a = Api.malloc dev (4 * n) in
      Api.write_f32s dev a data;
      let r = Api.launch dev m ~kernel:"vecadd" ~grid:(Launch.dim3 g)
                ~block:(Launch.dim3 b) ~args:[ Ptr a; I32 n ] in
      Fmt.pr "%.2f GFLOP/s@." r.Api.gflops
    ]} *)

module Machine = Vekt_vm.Machine
module Interp = Vekt_vm.Interp
module Vectorize = Vekt_transform.Vectorize
open Vekt_ptx

let compile_error ?(kernel = "") ?ws ?tier ?line ~stage reason =
  Vekt_error.Error
    (Vekt_error.Compile { kernel; ws; tier; stage; line; reason })

type device = {
  machine : Machine.t;
  workers : int;
  global : Mem.t;
  mutable brk : int;  (** bump-allocator watermark *)
  em_costs : Exec_manager.costs;
}

(** Launch-configuration knobs, fixed when a module is loaded. *)
type config = {
  mode : Vectorize.mode;
  widths : int list;
  optimize : bool;
  affine : bool;
      (** coalesce provably-contiguous/uniform memory accesses (the
          paper's §4 future-work optimization) *)
  specialize_args : bool;
      (** bake concrete kernel-argument values into the code (the paper's
          §5.1 future-work specialization parameter) *)
  verify : bool;
  sched : Scheduler.kind option;
      (** warp-formation policy; [None] follows the vectorization mode
          (dynamic mode → dynamic formation, TIE → static formation) *)
  pipeline : Vekt_transform.Passes.pipeline;
      (** optimization pass pipeline for (tier-1) specializations *)
  tiering : Translation_cache.tiering;
      (** eager full compilation, or tier-0-then-promote-on-hotness *)
  cache_capacity : int option;
      (** bound on live specializations per kernel (LRU eviction) *)
  (* ---- fault tolerance (DESIGN.md §3.3) ---- *)
  inject : Fault.config option;  (** deterministic fault injection plan *)
  watchdog : int option;  (** per-warp livelock watchdog threshold *)
  quarantine_ttl : int;
      (** successful launches a failed width sits out before retry *)
  recover : bool;
      (** on a recoverable fault, roll global memory back and re-run the
          launch under the reference emulator (the oracle) *)
  workers : int option;
      (** execution-manager worker domains per launch; [None] follows
          the device ([machine cores]).  Clamped to the CTA count; 1 =
          serial. *)
}

let default_config =
  { mode = Vectorize.Dynamic; widths = Translation_cache.default_widths;
    optimize = true; affine = false; specialize_args = false; verify = false;
    sched = None; pipeline = Vekt_transform.Passes.default_pipeline;
    tiering = Translation_cache.Eager; cache_capacity = None;
    inject = None; watchdog = None;
    quarantine_ttl = Translation_cache.default_quarantine_ttl;
    recover = false; workers = None }

(** The scheduling policy a config resolves to. *)
let sched_policy (c : config) : Scheduler.t =
  Scheduler.of_kind
    (Option.value c.sched ~default:(Scheduler.default_kind_for c.mode))

type modul = {
  ast : Ast.modul;
  config : config;
  device : device;
  consts : Mem.t;
  caches : (string, Translation_cache.t) Hashtbl.t;
  fault : Fault.t option;  (** armed injector, shared by cache and managers *)
  mutable emulator_runs : int;  (** launches that recovered onto the oracle *)
}

let create_device ?(machine = Machine.sse4) ?workers ?(global_bytes = 64 * 1024 * 1024)
    ?(em_costs = Exec_manager.default_costs) () : device =
  {
    machine;
    workers = Option.value workers ~default:machine.Machine.cores;
    global = Mem.create ~name:"global" global_bytes;
    brk = 64 (* keep address 0 unallocated to catch null-ish bugs *);
    em_costs;
  }

(** Allocate [bytes] of device global memory (16-byte aligned). *)
let malloc (d : device) bytes : int =
  if bytes < 0 then invalid_arg "malloc: negative size";
  let base = (d.brk + 15) / 16 * 16 in
  if base + bytes > Mem.size d.global then
    raise
      (Vekt_error.Error
         (Vekt_error.Resource
            {
              what = "device global memory";
              requested = bytes;
              available = max 0 (Mem.size d.global - base);
            }));
  d.brk <- base + bytes;
  base

let write_f32s d addr xs = Mem.write_f32s d.global ~at:addr xs
let write_i32s d addr xs = Mem.write_i32s d.global ~at:addr xs
let read_f32s d addr n = Mem.read_f32s d.global ~at:addr n
let read_i32s d addr n = Mem.read_i32s d.global ~at:addr n

(** Parse, type-check and register a PTX module.  Kernels are analyzed and
    translated lazily on first launch (the translation cache is shared by
    all launches of this module). *)
let load_module ?(config = default_config) (d : device) (src : string) : modul =
  let ast =
    try Parser.parse_module src with
    | Parser.Error (msg, line) ->
        raise (compile_error ~stage:Vekt_error.Parse ~line msg)
    | Lexer.Error (msg, line) ->
        raise (compile_error ~stage:Vekt_error.Lex ~line msg)
  in
  (match Typecheck.check_module ast with
  | [] -> ()
  | e :: _ ->
      raise
        (compile_error ~stage:Vekt_error.Typecheck
           (Fmt.str "%a" Typecheck.pp_error e)));
  (* reject incompatible policy × vectorization combinations up front;
     a bad policy is a host programming error, not a guest fault *)
  Scheduler.validate ~mode:config.mode (sched_policy config);
  let consts, _ = Emulator.build_consts ast in
  {
    ast;
    config;
    device = d;
    consts;
    caches = Hashtbl.create 4;
    fault = Option.map Fault.create config.inject;
    emulator_runs = 0;
  }

let kernel_cache (m : modul) ~kernel : Translation_cache.t =
  match Hashtbl.find_opt m.caches kernel with
  | Some c -> c
  | None ->
      let c =
        try
          Translation_cache.prepare ~mode:m.config.mode ~affine:m.config.affine
            ~specialize_args:m.config.specialize_args ~machine:m.device.machine
            ~widths:m.config.widths ~optimize:m.config.optimize
            ~pipeline:m.config.pipeline ~tiering:m.config.tiering
            ?capacity:m.config.cache_capacity ~verify:m.config.verify
            ?fault:m.fault ~quarantine_ttl:m.config.quarantine_ttl m.ast
            ~kernel
        with Vekt_transform.Ptx_to_ir.Unsupported u ->
          raise
            (compile_error ~kernel ~stage:Vekt_error.Frontend u.construct)
      in
      Hashtbl.replace m.caches kernel c;
      c

type report = {
  stats : Stats.t;
  cycles : float;  (** wall cycles: max over parallel workers *)
  time_ms : float;
  gflops : float;
  avg_warp_size : float;
  recovered : Vekt_error.t option;
      (** the fault this launch transparently recovered from by rolling
          memory back and re-running under the reference emulator *)
}

let launch ?fuel ?(sink = Vekt_obs.Sink.noop)
    ?(profile : Vekt_obs.Divergence.t option) (m : modul) ~kernel
    ~(grid : Launch.dim3) ~(block : Launch.dim3) ~(args : Launch.arg list) :
    report =
  let k =
    match Ast.find_kernel m.ast kernel with
    | Some k -> k
    | None ->
        raise
          (compile_error ~kernel ~stage:Vekt_error.Frontend
             (Fmt.str "no kernel named %s" kernel))
  in
  let params = Launch.param_block k args in
  (* When recovery is armed, snapshot global memory before the launch so
     a partially-executed faulty launch can be rolled back before the
     oracle re-runs it; the copy is skipped entirely otherwise. *)
  let snapshot =
    if m.config.recover then Some (Bytes.copy (Mem.bytes m.device.global))
    else None
  in
  let run_vectorized () =
    let cache = kernel_cache m ~kernel in
    let workers = Option.value m.config.workers ~default:m.device.workers in
    let stats =
      Worker_pool.launch ~costs:m.device.em_costs ?fuel
        ?watchdog:m.config.watchdog ?inject:m.fault ~workers
        ~sink ?profile ~sched:(sched_policy m.config) cache ~grid ~block
        ~global:m.device.global ~params ~consts:m.consts
    in
    (* one healthy launch elapsed: age the quarantine so failed widths
       eventually get another chance *)
    Translation_cache.tick_quarantine cache ~sink ();
    stats
  in
  let stats, recovered =
    match run_vectorized () with
    | stats -> (stats, None)
    | exception Vekt_error.Error err
      when m.config.recover && Vekt_error.recoverable err ->
        (match snapshot with
        | Some bytes ->
            Bytes.blit bytes 0 (Mem.bytes m.device.global) 0 (Bytes.length bytes)
        | None -> ());
        m.emulator_runs <- m.emulator_runs + 1;
        ignore
          (Emulator.run m.ast ~kernel ~args ~global:m.device.global ~grid ~block);
        (Stats.create (), Some err)
  in
  let cycles = Float.max stats.Stats.wall_cycles 1.0 in
  let time_s = cycles /. (m.device.machine.Machine.clock_ghz *. 1e9) in
  let flops = float_of_int stats.Stats.counters.Interp.flops in
  {
    stats;
    cycles;
    time_ms = time_s *. 1e3;
    gflops = (flops /. time_s) /. 1e9;
    avg_warp_size = Stats.average_warp_size stats;
    recovered;
  }

(** Export a launch report plus the kernel's JIT-cache state (hit/miss
    rates, per-specialization compile cost) into one metrics registry —
    the machine-readable form behind [vektc run --metrics]. *)
let metrics (m : modul) ~kernel (r : report) : Vekt_obs.Metrics.t =
  let reg = Stats.to_metrics r.stats in
  let module M = Vekt_obs.Metrics in
  M.set (M.gauge reg "launch.time_ms") r.time_ms;
  M.set (M.gauge reg "launch.gflops") r.gflops;
  (match Hashtbl.find_opt m.caches kernel with
  | Some c -> Translation_cache.metrics_into c reg
  | None -> ());
  M.counter reg "fallback.emulator_runs" := m.emulator_runs;
  Option.iter (fun f -> Fault.metrics_into f reg) m.fault;
  reg

(** Run the same launch through the reference PTX emulator (the oracle) on
    a copy of device memory; returns the resulting global memory for
    comparison with the vectorized pipeline's. *)
let launch_reference (m : modul) ~kernel ~grid ~block ~(args : Launch.arg list) :
    Mem.t =
  let global = Mem.copy m.device.global in
  ignore (Emulator.run m.ast ~kernel ~args ~global ~grid ~block);
  global
