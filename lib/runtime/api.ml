(** CUDA-Runtime-style host API (paper §3: "the proposed compilation model
    is wrapped by an API front-end for heterogeneous computing").

    Typical use:
    {[
      let dev = Api.create_device () in
      let m = Api.load_module dev ptx_source in
      let a = Api.malloc dev (4 * n) in
      Api.write_f32s dev a data;
      let r = Api.launch dev m ~kernel:"vecadd" ~grid:(Launch.dim3 g)
                ~block:(Launch.dim3 b) ~args:[ Ptr a; I32 n ] in
      Fmt.pr "%.2f GFLOP/s@." r.Api.gflops
    ]} *)

module Machine = Vekt_vm.Machine
module Interp = Vekt_vm.Interp
module Vectorize = Vekt_transform.Vectorize
open Vekt_ptx

let compile_error ?(kernel = "") ?ws ?tier ?line ~stage reason =
  Vekt_error.Error
    (Vekt_error.Compile { kernel; ws; tier; stage; line; reason })

(** One session: per-client state layered over a shared {!Engine.t}.
    The device owns what must be private to a client — global memory,
    the allocator, launch bookkeeping — while the engine owns the
    shared JIT state (translation caches, engine-wide sink).  A device
    created without an explicit engine gets a private one, which is
    exactly the old one-shot behavior: "an engine with one session". *)
type device = {
  machine : Machine.t;
  workers : int;
  global : Mem.t;
  mutable brk : int;  (** bump-allocator watermark *)
  em_costs : Exec_manager.costs;
  engine : Engine.t;  (** shared JIT state this session runs over *)
  allocs : (int, int) Hashtbl.t;  (** live allocations: base → padded size *)
  mutable free_blocks : (int * int) list;
      (** freed [(base, size)] blocks below the watermark, sorted by
          base and coalesced; {!malloc} reuses them first-fit *)
}

(** Launch-configuration knobs, fixed when a module is loaded. *)
type config = {
  mode : Vectorize.mode;
  widths : int list;
  optimize : bool;
  affine : bool;
      (** coalesce provably-contiguous/uniform memory accesses (the
          paper's §4 future-work optimization) *)
  specialize_args : bool;
      (** bake concrete kernel-argument values into the code (the paper's
          §5.1 future-work specialization parameter) *)
  verify : bool;
  sched : Scheduler.kind option;
      (** warp-formation policy; [None] follows the vectorization mode
          (dynamic mode → dynamic formation, TIE → static formation) *)
  pipeline : Vekt_transform.Passes.pipeline;
      (** optimization pass pipeline for (tier-1) specializations *)
  tiering : Translation_cache.tiering;
      (** eager full compilation, or tier-0-then-promote-on-hotness *)
  cache_capacity : int option;
      (** bound on live specializations per kernel (LRU eviction) *)
  (* ---- fault tolerance (DESIGN.md §3.3) ---- *)
  inject : Fault.config option;  (** deterministic fault injection plan *)
  watchdog : int option;  (** per-warp livelock watchdog threshold *)
  quarantine_ttl : int;
      (** successful launches a failed width sits out before retry *)
  recover : bool;
      (** on a recoverable fault, roll global memory back and re-run the
          launch under the reference emulator (the oracle) *)
  workers : int option;
      (** execution-manager worker domains per launch; [None] follows
          the device ([machine cores]).  Clamped to the CTA count; 1 =
          serial. *)
  quarantine_max_age_us : float option;
      (** additionally expire quarantined widths after this much
          monotonic wall time, independent of launch count *)
  (* ---- checkpoint / record-replay (DESIGN.md §3.5) ---- *)
  checkpoint_every : int;
      (** snapshot the launch every N scheduler iterations; 0 = off.
          Forces the worker pool serial (the modelled [workers]
          partition is preserved in the snapshot). *)
  checkpoint_dir : string;  (** where snapshots land *)
  record : string option;
      (** write the warp-formation schedule of each clean launch to
          this log *)
  replay : string option;
      (** drive launches from a recorded schedule log instead of the
          live scheduler, asserting equivalence at every decision *)
}

let default_config =
  { mode = Vectorize.Dynamic; widths = Translation_cache.default_widths;
    optimize = true; affine = false; specialize_args = false; verify = false;
    sched = None; pipeline = Vekt_transform.Passes.default_pipeline;
    tiering = Translation_cache.Eager; cache_capacity = None;
    inject = None; watchdog = None;
    quarantine_ttl = Translation_cache.default_quarantine_ttl;
    recover = false; workers = None; quarantine_max_age_us = None;
    checkpoint_every = 0; checkpoint_dir = "vekt-ckpt"; record = None;
    replay = None }

(** Reject malformed configurations at module-load time with a
    structured error, instead of letting a nonsense knob surface as an
    arbitrary crash mid-launch. *)
let validate_config (c : config) =
  let bad what requested available =
    raise
      (Vekt_error.Error (Vekt_error.Resource { what; requested; available }))
  in
  (match c.workers with
  | Some w when w <= 0 -> bad "config.workers (want >= 1)" w 1
  | _ -> ());
  if c.checkpoint_every < 0 then
    bad "config.checkpoint_every (want >= 0)" c.checkpoint_every 0;
  if c.quarantine_ttl < 0 then
    bad "config.quarantine_ttl (want >= 0)" c.quarantine_ttl 0;
  if c.pipeline.Vekt_transform.Passes.passes = [] then
    bad "config.pipeline (want at least one pass)" 0 1;
  (match c.cache_capacity with
  | Some cap when cap < 1 -> bad "config.cache_capacity (want >= 1)" cap 1
  | _ -> ());
  match (c.record, c.replay) with
  | Some r, Some _ ->
      raise
        (Vekt_error.Error
           (Vekt_error.Checkpoint
              {
                path = r;
                what = "replay log";
                reason = "record and replay are mutually exclusive";
              }))
  | _ -> ()

(** The scheduling policy a config resolves to. *)
let sched_policy (c : config) : Scheduler.t =
  Scheduler.of_kind
    (Option.value c.sched ~default:(Scheduler.default_kind_for c.mode))

(** Build a {!config} from a string-keyed spec — the one construction
    path shared verbatim by the [vektc run] flag set and the daemon
    protocol's [load-module] request, so the two fronts cannot drift.

    Recognized keys (values are strings):
    [mode] (dynamic|static), [static] (bool shorthand for [mode]),
    [affine], [optimize], [verify], [specialize-args] (bools),
    [ws]/[warp-size] (shorthand for [widths = ws,1]), [widths]
    (comma-separated, sorted/deduped descending), [sched]
    (dynamic|static|barrier), [pipeline] (pass-pipeline spec),
    [tiered] (bool), [hot-threshold], [cache-cap], [inject]
    (';'-separated fault specs; implies [recover]), [inject-seed],
    [watchdog], [quarantine-ttl], [quarantine-max-age-us], [recover],
    [workers], [checkpoint-every], [checkpoint-dir], [record],
    [replay].

    Returns [Error] (not an exception) on an unknown key or a
    malformed value: a daemon must answer a bad client request, not
    die on it.  The result still goes through {!validate_config} at
    module load. *)
let config_of_spec ?(base = default_config) (spec : (string * string) list) :
    (config, string) result =
  let exception Bad of string in
  let fail fmt = Fmt.kstr (fun s -> raise (Bad s)) fmt in
  let bool_of k v =
    match String.lowercase_ascii v with
    | "true" | "1" | "yes" | "on" -> true
    | "false" | "0" | "no" | "off" -> false
    | _ -> fail "%s: bad boolean %S" k v
  in
  let int_of k v =
    match int_of_string_opt (String.trim v) with
    | Some n -> n
    | None -> fail "%s: bad integer %S" k v
  in
  let float_of k v =
    match float_of_string_opt (String.trim v) with
    | Some x -> x
    | None -> fail "%s: bad number %S" k v
  in
  let desc_uniq ws = List.sort_uniq (fun a b -> compare b a) ws in
  try
    let cfg = ref base in
    let ws = ref None and tiered = ref None and hot = ref None in
    let inject_specs = ref [] and inject_seed = ref Fault.default_seed in
    let recover = ref base.recover in
    List.iter
      (fun (k, v) ->
        match k with
        | "mode" -> (
            match String.lowercase_ascii v with
            | "dynamic" -> cfg := { !cfg with mode = Vectorize.Dynamic }
            | "static" | "static-tie" | "tie" ->
                cfg := { !cfg with mode = Vectorize.Static_tie }
            | _ -> fail "mode: want dynamic or static, got %S" v)
        | "static" ->
            cfg :=
              { !cfg with
                mode =
                  (if bool_of k v then Vectorize.Static_tie
                   else Vectorize.Dynamic)
              }
        | "affine" -> cfg := { !cfg with affine = bool_of k v }
        | "optimize" -> cfg := { !cfg with optimize = bool_of k v }
        | "verify" -> cfg := { !cfg with verify = bool_of k v }
        | "specialize-args" ->
            cfg := { !cfg with specialize_args = bool_of k v }
        | "ws" | "warp-size" -> ws := Some (int_of k v)
        | "widths" ->
            let widths = String.split_on_char ',' v |> List.map (int_of k) in
            if widths = [] then fail "widths: empty list";
            cfg := { !cfg with widths = desc_uniq widths }
        | "sched" -> (
            match Scheduler.kind_of_string v with
            | Some s -> cfg := { !cfg with sched = Some s }
            | None ->
                fail "sched: unknown policy %S (dynamic, static, barrier)" v)
        | "pipeline" -> (
            match Vekt_transform.Passes.parse_pipeline v with
            | Ok p -> cfg := { !cfg with pipeline = p }
            | Error e -> fail "pipeline: %s" e)
        | "tiered" -> tiered := Some (bool_of k v)
        | "hot-threshold" -> hot := Some (int_of k v)
        | "cache-cap" -> cfg := { !cfg with cache_capacity = Some (int_of k v) }
        | "inject" ->
            List.iter
              (fun s ->
                if String.trim s <> "" then
                  match Fault.parse_spec (String.trim s) with
                  | Ok sp -> inject_specs := !inject_specs @ [ sp ]
                  | Error e -> fail "inject: %s" e)
              (String.split_on_char ';' v)
        | "inject-seed" -> inject_seed := int_of k v
        | "watchdog" -> cfg := { !cfg with watchdog = Some (int_of k v) }
        | "quarantine-ttl" -> cfg := { !cfg with quarantine_ttl = int_of k v }
        | "quarantine-max-age-us" ->
            cfg := { !cfg with quarantine_max_age_us = Some (float_of k v) }
        | "recover" -> recover := bool_of k v
        | "workers" -> cfg := { !cfg with workers = Some (int_of k v) }
        | "checkpoint-every" ->
            cfg := { !cfg with checkpoint_every = int_of k v }
        | "checkpoint-dir" -> cfg := { !cfg with checkpoint_dir = v }
        | "record" -> cfg := { !cfg with record = Some v }
        | "replay" -> cfg := { !cfg with replay = Some v }
        | k -> fail "unknown config key %S" k)
      spec;
    (match !ws with
    | Some w -> cfg := { !cfg with widths = desc_uniq [ w; 1 ] }
    | None -> ());
    let tiering =
      match !tiered with
      | Some false -> Translation_cache.Eager
      | Some true ->
          Translation_cache.Tiered
            {
              hot_threshold =
                Option.value !hot
                  ~default:Translation_cache.default_hot_threshold;
            }
      | None -> (
          (* hot-threshold alone retunes an already-tiered base config *)
          match ((!cfg).tiering, !hot) with
          | Translation_cache.Tiered _, Some h ->
              Translation_cache.Tiered { hot_threshold = h }
          | t, _ -> t)
    in
    let inject =
      match !inject_specs with
      | [] -> (!cfg).inject
      | specs -> Some { Fault.seed = !inject_seed; specs }
    in
    (* injection without recovery would just crash the launch; arm the
       emulator fallback whenever faults are being injected *)
    Ok { !cfg with tiering; inject; recover = !recover || inject <> None }
  with Bad e -> Error e

type modul = {
  ast : Ast.modul;
  config : config;
  device : device;
  consts : Mem.t;
  caches : (string, Translation_cache.t) Hashtbl.t;
      (** per-module memo of engine-owned (or, under fault injection,
          private) translation caches, keyed by kernel name *)
  cache_key : string;
      (** engine cache-key prefix: digest of PTX source + compilation
          config fingerprint + machine, so sessions loading the same
          module with the same knobs share hot specializations *)
  fault : Fault.t option;  (** armed injector, shared by cache and managers *)
  mutable emulator_runs : int;  (** launches that recovered onto the oracle *)
  mutable last_ckpt : Checkpoint.ctx option;
      (** checkpoint bookkeeping of the most recent launch, for metrics *)
}

let create_device ?machine ?workers ?(global_bytes = 64 * 1024 * 1024)
    ?(em_costs = Exec_manager.default_costs) ?engine () : device =
  let engine =
    match engine with Some e -> e | None -> Engine.create ?machine ?workers ()
  in
  let machine = Option.value machine ~default:(Engine.machine engine) in
  Engine.note_session engine;
  {
    machine;
    workers = Option.value workers ~default:(Engine.default_workers engine);
    global = Mem.create ~name:"global" global_bytes;
    brk = 64 (* keep address 0 unallocated to catch null-ish bugs *);
    em_costs;
    engine;
    allocs = Hashtbl.create 16;
    free_blocks = [];
  }

let align16 n = (n + 15) / 16 * 16

(** Allocate [bytes] of device global memory (16-byte aligned).  Freed
    blocks below the watermark are reused first-fit before the
    watermark bumps, so a long-lived session that {!free}s what it
    {!malloc}s does not grow its arena without bound. *)
let malloc (d : device) bytes : int =
  if bytes < 0 then invalid_arg "malloc: negative size";
  let size = max 16 (align16 bytes) in
  let rec fit acc = function
    | [] -> None
    | (base, bsize) :: rest when bsize >= size ->
        let rest =
          if bsize - size >= 16 then (base + size, bsize - size) :: rest
          else rest
        in
        Some (base, List.rev_append acc rest)
    | b :: rest -> fit (b :: acc) rest
  in
  let base =
    match fit [] d.free_blocks with
    | Some (base, blocks) ->
        d.free_blocks <- blocks;
        base
    | None ->
        let base = align16 d.brk in
        if base + size > Mem.size d.global then
          raise
            (Vekt_error.Error
               (Vekt_error.Resource
                  {
                    what = "device global memory";
                    requested = bytes;
                    available = max 0 (Mem.size d.global - base);
                  }));
        d.brk <- base + size;
        base
  in
  Hashtbl.replace d.allocs base size;
  base

(** Release an allocation made by {!malloc}.  The block is zeroed (a
    later reuse must not leak stale data), returned to the free list
    (coalescing with adjacent free blocks), and when the freed region
    reaches back to the watermark the watermark itself drops.  Freeing
    an address that is not a live allocation is a structured
    {!Vekt_error.Resource} error — the daemon must not crash on a
    client's double-free. *)
let free (d : device) addr =
  match Hashtbl.find_opt d.allocs addr with
  | None ->
      raise
        (Vekt_error.Error
           (Vekt_error.Resource
              {
                what = "free: not a live allocation";
                requested = addr;
                available = 0;
              }))
  | Some size ->
      Hashtbl.remove d.allocs addr;
      Bytes.fill (Mem.bytes d.global) addr size '\000';
      let blocks = List.sort compare ((addr, size) :: d.free_blocks) in
      let rec coalesce = function
        | (a, sa) :: (b, sb) :: rest when a + sa = b ->
            coalesce ((a, sa + sb) :: rest)
        | x :: rest -> x :: coalesce rest
        | [] -> []
      in
      let blocks = coalesce blocks in
      d.free_blocks <-
        (match List.rev blocks with
        | (a, s) :: rev_rest when a + s = d.brk ->
            d.brk <- a;
            List.rev rev_rest
        | _ -> blocks)

(** Reset the session's whole arena: every allocation is dropped, the
    memory touched so far is zeroed, and the watermark returns to its
    initial position — the cheap way for a long-lived session to start
    a fresh problem without reopening. *)
let reset_arena (d : device) =
  Bytes.fill (Mem.bytes d.global) 0 (min d.brk (Mem.size d.global)) '\000';
  Hashtbl.reset d.allocs;
  d.free_blocks <- [];
  d.brk <- 64

(** Bytes of live allocations, for quota accounting and [stats]. *)
let allocated_bytes (d : device) =
  Hashtbl.fold (fun _ size acc -> acc + size) d.allocs 0

(** Advance the arena watermark so the next {!malloc} lands exactly at
    [addr].  Daemon restart recovery uses this to pin a recovered
    launch's buffers at the addresses the dead daemon already handed
    its client (the job manifest records them): a from-scratch rerun
    must put its outputs where the client will look.  [addr] must be
    16-aligned, in bounds, and not behind the watermark; the skipped
    gap is left unallocated. *)
let reserve_to (d : device) addr =
  if addr land 15 <> 0 then invalid_arg "reserve_to: unaligned address";
  if addr > Mem.size d.global then
    raise
      (Vekt_error.Error
         (Vekt_error.Resource
            {
              what = "device global memory";
              requested = addr;
              available = Mem.size d.global;
            }));
  if addr < align16 d.brk then invalid_arg "reserve_to: address already passed";
  d.brk <- addr

let write_f32s d addr xs = Mem.write_f32s d.global ~at:addr xs
let write_i32s d addr xs = Mem.write_i32s d.global ~at:addr xs
let read_f32s d addr n = Mem.read_f32s d.global ~at:addr n
let read_i32s d addr n = Mem.read_i32s d.global ~at:addr n

(** A launch argument parsed from a textual spec, plus the device
    address when the spec allocated a buffer (so the caller can read
    results back, or [free] it). *)
type parsed_arg = { launch_arg : Launch.arg; addr : int option }

(** Parse one textual argument spec — the grammar shared by
    [vektc run -a] and the daemon's [submit-launch] request:
    [i32:42], [i64:42], [f32:1.5], [f64:2.5], [zeros:N] (allocate N
    zeroed bytes, pass the pointer), [f32s:a,b,c] / [i32s:a,b,c]
    (allocate and fill, pass the pointer).  Allocations land in [d]'s
    arena.  Malformed specs are [Error]s; allocator exhaustion still
    raises the structured {!Vekt_error.Resource}. *)
let arg_of_spec (d : device) spec : (parsed_arg, string) result =
  match String.index_opt spec ':' with
  | None -> Error (Fmt.str "bad arg spec %S (want kind:value)" spec)
  | Some i -> (
      let kind = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      try
        match kind with
        | "i32" -> Ok { launch_arg = Launch.I32 (int_of_string rest); addr = None }
        | "i64" ->
            Ok { launch_arg = Launch.I64 (Int64.of_string rest); addr = None }
        | "f32" ->
            Ok { launch_arg = Launch.F32 (float_of_string rest); addr = None }
        | "f64" ->
            Ok { launch_arg = Launch.F64 (float_of_string rest); addr = None }
        | "zeros" ->
            let a = malloc d (int_of_string rest) in
            Ok { launch_arg = Launch.Ptr a; addr = Some a }
        | "f32s" ->
            let vals =
              String.split_on_char ',' rest |> List.map float_of_string
            in
            let a = malloc d (4 * List.length vals) in
            write_f32s d a vals;
            Ok { launch_arg = Launch.Ptr a; addr = Some a }
        | "i32s" ->
            let vals = String.split_on_char ',' rest |> List.map int_of_string in
            let a = malloc d (4 * List.length vals) in
            write_i32s d a vals;
            Ok { launch_arg = Launch.Ptr a; addr = Some a }
        | k -> Error (Fmt.str "unknown arg kind %S" k)
      with Failure _ -> Error (Fmt.str "bad arg spec %S" spec))

(** Parse, type-check and register a PTX module.  Kernels are analyzed and
    translated lazily on first launch (the translation cache is shared by
    all launches of this module).  [sink] receives [parse] and
    [typecheck] span events (worker 0, modelled time 0 — module loading
    happens before any modelled cycle elapses; the spans' width is wall
    time). *)
(* Canonical fingerprint of every knob that shapes compiled code or
   cache behavior — the config part of the engine's shared-cache key.
   Knobs that only affect the launch driver (workers, checkpointing,
   record/replay, watchdog, recover) are deliberately excluded: they
   don't change what the cache holds. *)
let config_fingerprint (c : config) (machine : Machine.t) : string =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (match c.mode with
    | Vectorize.Dynamic -> "dyn"
    | Vectorize.Static_tie -> "tie");
  List.iter (fun w -> Buffer.add_string b (Fmt.str ",%d" w)) c.widths;
  Buffer.add_string b
    (Fmt.str "|o%b|a%b|s%b|v%b|sched%s|" c.optimize c.affine c.specialize_args
       c.verify
       (match c.sched with
       | Some k -> Scheduler.kind_name k
       | None -> "-"));
  Buffer.add_string b
    (Fmt.str "%a|" Vekt_transform.Passes.pp_pipeline c.pipeline);
  (match c.tiering with
  | Translation_cache.Eager -> Buffer.add_string b "eager"
  | Translation_cache.Tiered { hot_threshold } ->
      Buffer.add_string b (Fmt.str "tiered:%d" hot_threshold));
  Buffer.add_string b
    (Fmt.str "|cap%s|ttl%d|age%s|m:%s"
       (match c.cache_capacity with Some n -> string_of_int n | None -> "-")
       c.quarantine_ttl
       (match c.quarantine_max_age_us with
       | Some x -> Fmt.str "%.0f" x
       | None -> "-")
       machine.Machine.name);
  Digest.to_hex (Digest.string (Buffer.contents b))

let load_module ?(config = default_config) ?(sink = Vekt_obs.Sink.noop)
    (d : device) (src : string) : modul =
  let sink = Vekt_obs.Sink.tee (Engine.sink d.engine) sink in
  let load_span kind name body =
    if Vekt_obs.Sink.enabled sink then begin
      Vekt_obs.Sink.emit sink
        (Vekt_obs.Event.Span_begin
           { ts = 0.0; wall_us = Clock.now_us (); worker = 0; kind; name });
      let r = body () in
      Vekt_obs.Sink.emit sink
        (Vekt_obs.Event.Span_end
           { ts = 0.0; wall_us = Clock.now_us (); worker = 0; kind; name });
      r
    end
    else body ()
  in
  let ast =
    load_span Vekt_obs.Event.Sk_parse "parse" (fun () ->
        try Parser.parse_module src with
        | Parser.Error (msg, line) ->
            raise (compile_error ~stage:Vekt_error.Parse ~line msg)
        | Lexer.Error (msg, line) ->
            raise (compile_error ~stage:Vekt_error.Lex ~line msg))
  in
  load_span Vekt_obs.Event.Sk_typecheck "typecheck" (fun () ->
      match Typecheck.check_module ast with
      | [] -> ()
      | e :: _ ->
          raise
            (compile_error ~stage:Vekt_error.Typecheck
               (Fmt.str "%a" Typecheck.pp_error e)));
  (* reject incompatible policy × vectorization combinations up front;
     a bad policy is a host programming error, not a guest fault *)
  Scheduler.validate ~mode:config.mode (sched_policy config);
  validate_config config;
  let consts, _ = Emulator.build_consts ast in
  {
    ast;
    config;
    device = d;
    consts;
    caches = Hashtbl.create 4;
    cache_key =
      Digest.to_hex (Digest.string src) ^ "-"
      ^ config_fingerprint config d.machine;
    fault = Option.map Fault.create config.inject;
    emulator_runs = 0;
    last_ckpt = None;
  }

let kernel_cache (m : modul) ~kernel : Translation_cache.t =
  match Hashtbl.find_opt m.caches kernel with
  | Some c -> c
  | None ->
      let build () =
        try
          Translation_cache.prepare ~mode:m.config.mode ~affine:m.config.affine
            ~specialize_args:m.config.specialize_args ~machine:m.device.machine
            ~widths:m.config.widths ~optimize:m.config.optimize
            ~pipeline:m.config.pipeline ~tiering:m.config.tiering
            ?capacity:m.config.cache_capacity ~verify:m.config.verify
            ?fault:m.fault ~quarantine_ttl:m.config.quarantine_ttl
            ?quarantine_max_age_us:m.config.quarantine_max_age_us m.ast
            ~kernel
        with Vekt_transform.Ptx_to_ir.Unsupported u ->
          raise
            (compile_error ~kernel ~stage:Vekt_error.Frontend u.construct)
      in
      let c =
        (* fault-injecting modules keep private caches: the injector's
           deterministic schedule is per-module state and must not leak
           into other sessions' launches *)
        if Option.is_some m.fault then build ()
        else
          Engine.find_or_build m.device.engine
            ~key:(m.cache_key ^ "/" ^ kernel)
            build
      in
      Hashtbl.replace m.caches kernel c;
      c

type report = {
  stats : Stats.t;
  cycles : float;  (** wall cycles: max over parallel workers *)
  time_ms : float;
  gflops : float;
  avg_warp_size : float;
  recovered : Vekt_error.t option;
      (** the fault this launch transparently recovered from by rolling
          memory back and re-running under the reference emulator *)
}

(** Run a kernel.  [resume] starts the launch from a snapshot file
    written by a previous (interrupted) run of the same launch;
    [checkpoint_stop] stops the launch by raising {!Checkpoint.Stop}
    after that many snapshots — the forced-preemption hook the
    cross-process resume tests use.  [preempt] arms an asynchronous
    preemption token (see {!Checkpoint.preempt}): when another domain
    requests it, the launch snapshots at its next safe point and raises
    {!Checkpoint.Stop} with the path to resume from; [ckpt_dir]
    overrides the config's snapshot directory for this launch (the
    daemon gives every job its own).  With [config.recover] set, a
    recoverable fault first tries to resume from the newest snapshot
    this launch wrote (each snapshot is tried at most once, so a
    deterministic fault cannot loop), and only then falls back to
    rolling memory back and re-running under the reference emulator.
    [deadline_ms] bounds the launch's wall clock: past the budget it
    snapshots its partial progress at the next safe point and dies with
    a structured {!Vekt_error.Deadline} naming that snapshot. *)
let launch ?fuel ?(sink = Vekt_obs.Sink.noop)
    ?(profile : Vekt_obs.Divergence.t option)
    ?(attr : Vekt_obs.Attribution.t option) ?(resume : string option)
    ?(checkpoint_stop : int option) ?(preempt : Checkpoint.preempt option)
    ?(ckpt_dir : string option) ?(deadline_ms : int option) (m : modul) ~kernel
    ~(grid : Launch.dim3) ~(block : Launch.dim3) ~(args : Launch.arg list) :
    report =
  Engine.note_launch m.device.engine;
  let sink = Vekt_obs.Sink.tee (Engine.sink m.device.engine) sink in
  let k =
    match Ast.find_kernel m.ast kernel with
    | Some k -> k
    | None ->
        raise
          (compile_error ~kernel ~stage:Vekt_error.Frontend
             (Fmt.str "no kernel named %s" kernel))
  in
  let params = Launch.param_block k args in
  let ncta = Launch.count grid in
  (* replay drives the launch under the partition it was recorded with,
     so worker-keyed decisions land on the workers that made them *)
  let replay_log = Option.map Replay.load m.config.replay in
  (match replay_log with
  | None -> ()
  | Some log ->
      let fail reason = Replay.bad ~path:log.Replay.path reason in
      if log.Replay.kernel <> kernel then
        fail
          (Fmt.str "log records kernel %s, launch runs %s" log.Replay.kernel
             kernel);
      if log.Replay.grid <> grid || log.Replay.block <> block then
        fail "grid/block shape differs from the recorded launch");
  let workers =
    let w =
      match replay_log with
      | Some log -> log.Replay.workers
      | None -> Option.value m.config.workers ~default:m.device.workers
    in
    max 1 (min w ncta)
  in
  (* cross-process resume: validate the snapshot against this launch
     before trusting any of its images.  A damaged or mismatched
     snapshot is a structured error; with [recover] armed it is instead
     noted and the launch falls back to the emulator oracle. *)
  let resume_rejected = ref None in
  let try_resume () =
    Option.map
      (fun path ->
        let s = Checkpoint.read path in
        let fail reason =
          raise
            (Vekt_error.Error
               (Vekt_error.Checkpoint { path; what = "checkpoint"; reason }))
        in
        if s.Checkpoint.kernel <> kernel then
          fail
            (Fmt.str "snapshot is of kernel %s, launch runs %s"
               s.Checkpoint.kernel kernel);
        if s.Checkpoint.grid <> grid || s.Checkpoint.block <> block then
          fail "grid/block shape differs from the snapshotted launch";
        if s.Checkpoint.workers <> workers then
          fail
            (Fmt.str "snapshot partitions over %d workers, launch over %d"
               s.Checkpoint.workers workers);
        if s.Checkpoint.global_size > Mem.size m.device.global then
          fail "snapshot's global segment exceeds this device";
        if Bytes.length s.Checkpoint.params_image <> Mem.size params then
          fail "parameter block size differs from the snapshotted launch";
        (* continue the snapshot's deterministic fault schedule instead
           of re-injecting from scratch *)
        (match (m.fault, s.Checkpoint.fault_state) with
        | Some inj, Some st -> Fault.import_state inj st
        | _ -> ());
        (path, s))
      resume
  in
  let resumed =
    try try_resume ()
    with Vekt_error.Error (Vekt_error.Checkpoint _ as err) when m.config.recover ->
      resume_rejected := Some err;
      None
  in
  let ctx =
    if
      m.config.checkpoint_every > 0
      || Option.is_some checkpoint_stop
      || Option.is_some resume
      || Option.is_some preempt
      || Option.is_some deadline_ms
    then begin
      let c =
        Checkpoint.create_ctx
          ~dir:(Option.value ckpt_dir ~default:m.config.checkpoint_dir)
          ?stop_after:checkpoint_stop ?preempt ~live_bytes:m.device.brk
          ~kernel ?deadline_ms ~every:m.config.checkpoint_every ()
      in
      (* number snapshots after the one we resumed from *)
      (match resumed with
      | Some (_, s) -> c.Checkpoint.seq <- s.Checkpoint.seq
      | None -> ());
      Some c
    end
    else None
  in
  m.last_ckpt <- ctx;
  (match (!resume_rejected, ctx) with
  | Some _, Some c -> c.Checkpoint.rejected <- c.Checkpoint.rejected + 1
  | _ -> ());
  (match (resumed, ctx) with
  | Some (path, s), Some c ->
      c.Checkpoint.resumes <- c.Checkpoint.resumes + 1;
      if Vekt_obs.Sink.enabled sink then
        Vekt_obs.Sink.emit sink
          (Vekt_obs.Event.Ckpt_resume
             { ts = 0.0; worker = 0; seq = s.Checkpoint.seq; path })
  | _ -> ());
  (match replay_log with
  | Some log when Vekt_obs.Sink.enabled sink ->
      Vekt_obs.Sink.emit sink
        (Vekt_obs.Event.Replay_begin
           {
             ts = 0.0;
             worker = 0;
             path = log.Replay.path;
             decisions = Replay.total log;
           })
  | _ -> ());
  let recorder = Option.map (fun _ -> Replay.recorder ~ncta) m.config.record in
  (* When recovery is armed, snapshot global memory before the launch so
     a partially-executed faulty launch can be rolled back before the
     oracle re-runs it; the copy is skipped entirely otherwise. *)
  let snapshot =
    if m.config.recover then Some (Bytes.copy (Mem.bytes m.device.global))
    else None
  in
  let run_vectorized ?(rs : Checkpoint.t option) () =
    let cache = kernel_cache m ~kernel in
    let stats =
      Worker_pool.launch ~costs:m.device.em_costs ?fuel
        ?watchdog:m.config.watchdog ?inject:m.fault ~workers
        ~sink ?profile ?attr ~sched:(sched_policy m.config) ?ckpt:ctx
        ?resume:rs ?record:recorder ?replay:replay_log cache ~grid ~block
        ~global:m.device.global ~params ~consts:m.consts
    in
    (* one healthy launch elapsed: age the quarantine so failed widths
       eventually get another chance *)
    Translation_cache.tick_quarantine cache ~sink ();
    stats
  in
  (* Recovery ladder: resume from the newest in-launch snapshot (only if
     strictly newer than the last one tried — a deterministic fault must
     not loop), and past that the emulator oracle on rolled-back memory. *)
  let rec attempt ~(rs : Checkpoint.t option) ~last_seq =
    match run_vectorized ?rs () with
    | stats -> (stats, None)
    | exception Vekt_error.Error err
      when m.config.recover && Vekt_error.recoverable err -> (
        let next =
          match ctx with
          | None -> None
          | Some c -> (
              match c.Checkpoint.latest with
              | Some (seq, path) when seq > last_seq -> (
                  try Some (seq, path, Checkpoint.read path)
                  with Vekt_error.Error (Vekt_error.Checkpoint _) ->
                    (* damaged snapshot: count the rejection, take the
                       next rung of the ladder *)
                    c.Checkpoint.rejected <- c.Checkpoint.rejected + 1;
                    None)
              | _ -> None)
        in
        match next with
        | Some (seq, path, s) ->
            (match ctx with
            | Some c ->
                c.Checkpoint.resumes <- c.Checkpoint.resumes + 1;
                if Vekt_obs.Sink.enabled sink then
                  Vekt_obs.Sink.emit sink
                    (Vekt_obs.Event.Ckpt_resume { ts = 0.0; worker = 0; seq; path })
            | None -> ());
            attempt ~rs:(Some s) ~last_seq:seq
        | None ->
            (match snapshot with
            | Some bytes ->
                Bytes.blit bytes 0 (Mem.bytes m.device.global) 0
                  (Bytes.length bytes)
            | None -> ());
            m.emulator_runs <- m.emulator_runs + 1;
            ignore
              (Emulator.run m.ast ~kernel ~args ~global:m.device.global ~grid
                 ~block);
            (Stats.create (), Some err))
  in
  (* Root span of the launch's trace.  The begin sits at modelled cycle 0
     on worker 0; the end is stamped with the launch's wall cycles (max
     over workers) so the span covers the whole modelled timeline.  Not
     exception-protected: a launch that dies leaves its root span open,
     which the crash bundle reports. *)
  let launch_span_name = Printf.sprintf "launch %s" kernel in
  if Vekt_obs.Sink.enabled sink then
    Vekt_obs.Sink.emit sink
      (Vekt_obs.Event.Span_begin
         { ts = 0.0; wall_us = Clock.now_us (); worker = 0;
           kind = Vekt_obs.Event.Sk_launch; name = launch_span_name });
  let stats, recovered =
    match !resume_rejected with
    | Some err ->
        (* the snapshot we were asked to resume from is unusable and
           nothing has run yet: go straight to the oracle *)
        m.emulator_runs <- m.emulator_runs + 1;
        ignore
          (Emulator.run m.ast ~kernel ~args ~global:m.device.global ~grid
             ~block);
        (Stats.create (), Some err)
    | None ->
        attempt
          ~rs:(Option.map snd resumed)
          ~last_seq:
            (match resumed with Some (_, s) -> s.Checkpoint.seq | None -> 0)
  in
  (* a schedule log is only meaningful for a clean, uninterrupted run *)
  (match (m.config.record, recorder, recovered) with
  | Some path, Some r, None
    when match ctx with Some c -> c.Checkpoint.resumes = 0 | None -> true ->
      Replay.save r ~path ~kernel ~grid ~block ~workers
  | _ -> ());
  if Vekt_obs.Sink.enabled sink then
    Vekt_obs.Sink.emit sink
      (Vekt_obs.Event.Span_end
         { ts = stats.Stats.wall_cycles; wall_us = Clock.now_us (); worker = 0;
           kind = Vekt_obs.Event.Sk_launch; name = launch_span_name });
  let cycles = Float.max stats.Stats.wall_cycles 1.0 in
  let time_s = cycles /. (m.device.machine.Machine.clock_ghz *. 1e9) in
  let flops = float_of_int stats.Stats.counters.Interp.flops in
  {
    stats;
    cycles;
    time_ms = time_s *. 1e3;
    gflops = (flops /. time_s) /. 1e9;
    avg_warp_size = Stats.average_warp_size stats;
    recovered;
  }

(** Export a launch report plus the kernel's JIT-cache state (hit/miss
    rates, per-specialization compile cost) into one metrics registry —
    the machine-readable form behind [vektc run --metrics]. *)
let metrics (m : modul) ~kernel (r : report) : Vekt_obs.Metrics.t =
  let reg = Stats.to_metrics r.stats in
  let module M = Vekt_obs.Metrics in
  M.set (M.gauge reg "launch.time_ms") r.time_ms;
  M.set (M.gauge reg "launch.gflops") r.gflops;
  (match Hashtbl.find_opt m.caches kernel with
  | Some c -> Translation_cache.metrics_into c reg
  | None -> ());
  M.counter reg "fallback.emulator_runs" := m.emulator_runs;
  Option.iter (fun f -> Fault.metrics_into f reg) m.fault;
  Option.iter (fun c -> Checkpoint.metrics_into c reg) m.last_ckpt;
  reg

(** Run the same launch through the reference PTX emulator (the oracle) on
    a copy of device memory; returns the resulting global memory for
    comparison with the vectorized pipeline's. *)
let launch_reference (m : modul) ~kernel ~grid ~block ~(args : Launch.arg list) :
    Mem.t =
  let global = Mem.copy m.device.global in
  ignore (Emulator.run m.ast ~kernel ~args ~global ~grid ~block);
  global
