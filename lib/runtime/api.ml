(** CUDA-Runtime-style host API (paper §3: "the proposed compilation model
    is wrapped by an API front-end for heterogeneous computing").

    Typical use:
    {[
      let dev = Api.create_device () in
      let m = Api.load_module dev ptx_source in
      let a = Api.malloc dev (4 * n) in
      Api.write_f32s dev a data;
      let r = Api.launch dev m ~kernel:"vecadd" ~grid:(Launch.dim3 g)
                ~block:(Launch.dim3 b) ~args:[ Ptr a; I32 n ] in
      Fmt.pr "%.2f GFLOP/s@." r.Api.gflops
    ]} *)

module Machine = Vekt_vm.Machine
module Interp = Vekt_vm.Interp
module Vectorize = Vekt_transform.Vectorize
open Vekt_ptx

let compile_error ?(kernel = "") ?ws ?tier ?line ~stage reason =
  Vekt_error.Error
    (Vekt_error.Compile { kernel; ws; tier; stage; line; reason })

type device = {
  machine : Machine.t;
  workers : int;
  global : Mem.t;
  mutable brk : int;  (** bump-allocator watermark *)
  em_costs : Exec_manager.costs;
}

(** Launch-configuration knobs, fixed when a module is loaded. *)
type config = {
  mode : Vectorize.mode;
  widths : int list;
  optimize : bool;
  affine : bool;
      (** coalesce provably-contiguous/uniform memory accesses (the
          paper's §4 future-work optimization) *)
  specialize_args : bool;
      (** bake concrete kernel-argument values into the code (the paper's
          §5.1 future-work specialization parameter) *)
  verify : bool;
  sched : Scheduler.kind option;
      (** warp-formation policy; [None] follows the vectorization mode
          (dynamic mode → dynamic formation, TIE → static formation) *)
  pipeline : Vekt_transform.Passes.pipeline;
      (** optimization pass pipeline for (tier-1) specializations *)
  tiering : Translation_cache.tiering;
      (** eager full compilation, or tier-0-then-promote-on-hotness *)
  cache_capacity : int option;
      (** bound on live specializations per kernel (LRU eviction) *)
  (* ---- fault tolerance (DESIGN.md §3.3) ---- *)
  inject : Fault.config option;  (** deterministic fault injection plan *)
  watchdog : int option;  (** per-warp livelock watchdog threshold *)
  quarantine_ttl : int;
      (** successful launches a failed width sits out before retry *)
  recover : bool;
      (** on a recoverable fault, roll global memory back and re-run the
          launch under the reference emulator (the oracle) *)
  workers : int option;
      (** execution-manager worker domains per launch; [None] follows
          the device ([machine cores]).  Clamped to the CTA count; 1 =
          serial. *)
  quarantine_max_age_us : float option;
      (** additionally expire quarantined widths after this much
          monotonic wall time, independent of launch count *)
  (* ---- checkpoint / record-replay (DESIGN.md §3.5) ---- *)
  checkpoint_every : int;
      (** snapshot the launch every N scheduler iterations; 0 = off.
          Forces the worker pool serial (the modelled [workers]
          partition is preserved in the snapshot). *)
  checkpoint_dir : string;  (** where snapshots land *)
  record : string option;
      (** write the warp-formation schedule of each clean launch to
          this log *)
  replay : string option;
      (** drive launches from a recorded schedule log instead of the
          live scheduler, asserting equivalence at every decision *)
}

let default_config =
  { mode = Vectorize.Dynamic; widths = Translation_cache.default_widths;
    optimize = true; affine = false; specialize_args = false; verify = false;
    sched = None; pipeline = Vekt_transform.Passes.default_pipeline;
    tiering = Translation_cache.Eager; cache_capacity = None;
    inject = None; watchdog = None;
    quarantine_ttl = Translation_cache.default_quarantine_ttl;
    recover = false; workers = None; quarantine_max_age_us = None;
    checkpoint_every = 0; checkpoint_dir = "vekt-ckpt"; record = None;
    replay = None }

(** Reject malformed configurations at module-load time with a
    structured error, instead of letting a nonsense knob surface as an
    arbitrary crash mid-launch. *)
let validate_config (c : config) =
  let bad what requested available =
    raise
      (Vekt_error.Error (Vekt_error.Resource { what; requested; available }))
  in
  (match c.workers with
  | Some w when w <= 0 -> bad "config.workers (want >= 1)" w 1
  | _ -> ());
  if c.checkpoint_every < 0 then
    bad "config.checkpoint_every (want >= 0)" c.checkpoint_every 0;
  if c.quarantine_ttl < 0 then
    bad "config.quarantine_ttl (want >= 0)" c.quarantine_ttl 0;
  if c.pipeline.Vekt_transform.Passes.passes = [] then
    bad "config.pipeline (want at least one pass)" 0 1;
  (match c.cache_capacity with
  | Some cap when cap < 1 -> bad "config.cache_capacity (want >= 1)" cap 1
  | _ -> ());
  match (c.record, c.replay) with
  | Some r, Some _ ->
      raise
        (Vekt_error.Error
           (Vekt_error.Checkpoint
              {
                path = r;
                what = "replay log";
                reason = "record and replay are mutually exclusive";
              }))
  | _ -> ()

(** The scheduling policy a config resolves to. *)
let sched_policy (c : config) : Scheduler.t =
  Scheduler.of_kind
    (Option.value c.sched ~default:(Scheduler.default_kind_for c.mode))

type modul = {
  ast : Ast.modul;
  config : config;
  device : device;
  consts : Mem.t;
  caches : (string, Translation_cache.t) Hashtbl.t;
  fault : Fault.t option;  (** armed injector, shared by cache and managers *)
  mutable emulator_runs : int;  (** launches that recovered onto the oracle *)
  mutable last_ckpt : Checkpoint.ctx option;
      (** checkpoint bookkeeping of the most recent launch, for metrics *)
}

let create_device ?(machine = Machine.sse4) ?workers ?(global_bytes = 64 * 1024 * 1024)
    ?(em_costs = Exec_manager.default_costs) () : device =
  {
    machine;
    workers = Option.value workers ~default:machine.Machine.cores;
    global = Mem.create ~name:"global" global_bytes;
    brk = 64 (* keep address 0 unallocated to catch null-ish bugs *);
    em_costs;
  }

(** Allocate [bytes] of device global memory (16-byte aligned). *)
let malloc (d : device) bytes : int =
  if bytes < 0 then invalid_arg "malloc: negative size";
  let base = (d.brk + 15) / 16 * 16 in
  if base + bytes > Mem.size d.global then
    raise
      (Vekt_error.Error
         (Vekt_error.Resource
            {
              what = "device global memory";
              requested = bytes;
              available = max 0 (Mem.size d.global - base);
            }));
  d.brk <- base + bytes;
  base

let write_f32s d addr xs = Mem.write_f32s d.global ~at:addr xs
let write_i32s d addr xs = Mem.write_i32s d.global ~at:addr xs
let read_f32s d addr n = Mem.read_f32s d.global ~at:addr n
let read_i32s d addr n = Mem.read_i32s d.global ~at:addr n

(** Parse, type-check and register a PTX module.  Kernels are analyzed and
    translated lazily on first launch (the translation cache is shared by
    all launches of this module).  [sink] receives [parse] and
    [typecheck] span events (worker 0, modelled time 0 — module loading
    happens before any modelled cycle elapses; the spans' width is wall
    time). *)
let load_module ?(config = default_config) ?(sink = Vekt_obs.Sink.noop)
    (d : device) (src : string) : modul =
  let load_span kind name body =
    if Vekt_obs.Sink.enabled sink then begin
      Vekt_obs.Sink.emit sink
        (Vekt_obs.Event.Span_begin
           { ts = 0.0; wall_us = Clock.now_us (); worker = 0; kind; name });
      let r = body () in
      Vekt_obs.Sink.emit sink
        (Vekt_obs.Event.Span_end
           { ts = 0.0; wall_us = Clock.now_us (); worker = 0; kind; name });
      r
    end
    else body ()
  in
  let ast =
    load_span Vekt_obs.Event.Sk_parse "parse" (fun () ->
        try Parser.parse_module src with
        | Parser.Error (msg, line) ->
            raise (compile_error ~stage:Vekt_error.Parse ~line msg)
        | Lexer.Error (msg, line) ->
            raise (compile_error ~stage:Vekt_error.Lex ~line msg))
  in
  load_span Vekt_obs.Event.Sk_typecheck "typecheck" (fun () ->
      match Typecheck.check_module ast with
      | [] -> ()
      | e :: _ ->
          raise
            (compile_error ~stage:Vekt_error.Typecheck
               (Fmt.str "%a" Typecheck.pp_error e)));
  (* reject incompatible policy × vectorization combinations up front;
     a bad policy is a host programming error, not a guest fault *)
  Scheduler.validate ~mode:config.mode (sched_policy config);
  validate_config config;
  let consts, _ = Emulator.build_consts ast in
  {
    ast;
    config;
    device = d;
    consts;
    caches = Hashtbl.create 4;
    fault = Option.map Fault.create config.inject;
    emulator_runs = 0;
    last_ckpt = None;
  }

let kernel_cache (m : modul) ~kernel : Translation_cache.t =
  match Hashtbl.find_opt m.caches kernel with
  | Some c -> c
  | None ->
      let c =
        try
          Translation_cache.prepare ~mode:m.config.mode ~affine:m.config.affine
            ~specialize_args:m.config.specialize_args ~machine:m.device.machine
            ~widths:m.config.widths ~optimize:m.config.optimize
            ~pipeline:m.config.pipeline ~tiering:m.config.tiering
            ?capacity:m.config.cache_capacity ~verify:m.config.verify
            ?fault:m.fault ~quarantine_ttl:m.config.quarantine_ttl
            ?quarantine_max_age_us:m.config.quarantine_max_age_us m.ast
            ~kernel
        with Vekt_transform.Ptx_to_ir.Unsupported u ->
          raise
            (compile_error ~kernel ~stage:Vekt_error.Frontend u.construct)
      in
      Hashtbl.replace m.caches kernel c;
      c

type report = {
  stats : Stats.t;
  cycles : float;  (** wall cycles: max over parallel workers *)
  time_ms : float;
  gflops : float;
  avg_warp_size : float;
  recovered : Vekt_error.t option;
      (** the fault this launch transparently recovered from by rolling
          memory back and re-running under the reference emulator *)
}

(** Run a kernel.  [resume] starts the launch from a snapshot file
    written by a previous (interrupted) run of the same launch;
    [checkpoint_stop] stops the launch by raising {!Checkpoint.Stop}
    after that many snapshots — the forced-preemption hook the
    cross-process resume tests use.  With [config.recover] set, a
    recoverable fault first tries to resume from the newest snapshot
    this launch wrote (each snapshot is tried at most once, so a
    deterministic fault cannot loop), and only then falls back to
    rolling memory back and re-running under the reference emulator. *)
let launch ?fuel ?(sink = Vekt_obs.Sink.noop)
    ?(profile : Vekt_obs.Divergence.t option)
    ?(attr : Vekt_obs.Attribution.t option) ?(resume : string option)
    ?(checkpoint_stop : int option) (m : modul) ~kernel
    ~(grid : Launch.dim3) ~(block : Launch.dim3) ~(args : Launch.arg list) :
    report =
  let k =
    match Ast.find_kernel m.ast kernel with
    | Some k -> k
    | None ->
        raise
          (compile_error ~kernel ~stage:Vekt_error.Frontend
             (Fmt.str "no kernel named %s" kernel))
  in
  let params = Launch.param_block k args in
  let ncta = Launch.count grid in
  (* replay drives the launch under the partition it was recorded with,
     so worker-keyed decisions land on the workers that made them *)
  let replay_log = Option.map Replay.load m.config.replay in
  (match replay_log with
  | None -> ()
  | Some log ->
      let fail reason = Replay.bad ~path:log.Replay.path reason in
      if log.Replay.kernel <> kernel then
        fail
          (Fmt.str "log records kernel %s, launch runs %s" log.Replay.kernel
             kernel);
      if log.Replay.grid <> grid || log.Replay.block <> block then
        fail "grid/block shape differs from the recorded launch");
  let workers =
    let w =
      match replay_log with
      | Some log -> log.Replay.workers
      | None -> Option.value m.config.workers ~default:m.device.workers
    in
    max 1 (min w ncta)
  in
  (* cross-process resume: validate the snapshot against this launch
     before trusting any of its images.  A damaged or mismatched
     snapshot is a structured error; with [recover] armed it is instead
     noted and the launch falls back to the emulator oracle. *)
  let resume_rejected = ref None in
  let try_resume () =
    Option.map
      (fun path ->
        let s = Checkpoint.read path in
        let fail reason =
          raise
            (Vekt_error.Error
               (Vekt_error.Checkpoint { path; what = "checkpoint"; reason }))
        in
        if s.Checkpoint.kernel <> kernel then
          fail
            (Fmt.str "snapshot is of kernel %s, launch runs %s"
               s.Checkpoint.kernel kernel);
        if s.Checkpoint.grid <> grid || s.Checkpoint.block <> block then
          fail "grid/block shape differs from the snapshotted launch";
        if s.Checkpoint.workers <> workers then
          fail
            (Fmt.str "snapshot partitions over %d workers, launch over %d"
               s.Checkpoint.workers workers);
        if s.Checkpoint.global_size > Mem.size m.device.global then
          fail "snapshot's global segment exceeds this device";
        if Bytes.length s.Checkpoint.params_image <> Mem.size params then
          fail "parameter block size differs from the snapshotted launch";
        (* continue the snapshot's deterministic fault schedule instead
           of re-injecting from scratch *)
        (match (m.fault, s.Checkpoint.fault_state) with
        | Some inj, Some st -> Fault.import_state inj st
        | _ -> ());
        (path, s))
      resume
  in
  let resumed =
    try try_resume ()
    with Vekt_error.Error (Vekt_error.Checkpoint _ as err) when m.config.recover ->
      resume_rejected := Some err;
      None
  in
  let ctx =
    if
      m.config.checkpoint_every > 0
      || Option.is_some checkpoint_stop
      || Option.is_some resume
    then begin
      let c =
        Checkpoint.create_ctx ~dir:m.config.checkpoint_dir
          ?stop_after:checkpoint_stop ~live_bytes:m.device.brk
          ~every:m.config.checkpoint_every ()
      in
      (* number snapshots after the one we resumed from *)
      (match resumed with
      | Some (_, s) -> c.Checkpoint.seq <- s.Checkpoint.seq
      | None -> ());
      Some c
    end
    else None
  in
  m.last_ckpt <- ctx;
  (match (!resume_rejected, ctx) with
  | Some _, Some c -> c.Checkpoint.rejected <- c.Checkpoint.rejected + 1
  | _ -> ());
  (match (resumed, ctx) with
  | Some (path, s), Some c ->
      c.Checkpoint.resumes <- c.Checkpoint.resumes + 1;
      if Vekt_obs.Sink.enabled sink then
        Vekt_obs.Sink.emit sink
          (Vekt_obs.Event.Ckpt_resume
             { ts = 0.0; worker = 0; seq = s.Checkpoint.seq; path })
  | _ -> ());
  (match replay_log with
  | Some log when Vekt_obs.Sink.enabled sink ->
      Vekt_obs.Sink.emit sink
        (Vekt_obs.Event.Replay_begin
           {
             ts = 0.0;
             worker = 0;
             path = log.Replay.path;
             decisions = Replay.total log;
           })
  | _ -> ());
  let recorder = Option.map (fun _ -> Replay.recorder ~ncta) m.config.record in
  (* When recovery is armed, snapshot global memory before the launch so
     a partially-executed faulty launch can be rolled back before the
     oracle re-runs it; the copy is skipped entirely otherwise. *)
  let snapshot =
    if m.config.recover then Some (Bytes.copy (Mem.bytes m.device.global))
    else None
  in
  let run_vectorized ?(rs : Checkpoint.t option) () =
    let cache = kernel_cache m ~kernel in
    let stats =
      Worker_pool.launch ~costs:m.device.em_costs ?fuel
        ?watchdog:m.config.watchdog ?inject:m.fault ~workers
        ~sink ?profile ?attr ~sched:(sched_policy m.config) ?ckpt:ctx
        ?resume:rs ?record:recorder ?replay:replay_log cache ~grid ~block
        ~global:m.device.global ~params ~consts:m.consts
    in
    (* one healthy launch elapsed: age the quarantine so failed widths
       eventually get another chance *)
    Translation_cache.tick_quarantine cache ~sink ();
    stats
  in
  (* Recovery ladder: resume from the newest in-launch snapshot (only if
     strictly newer than the last one tried — a deterministic fault must
     not loop), and past that the emulator oracle on rolled-back memory. *)
  let rec attempt ~(rs : Checkpoint.t option) ~last_seq =
    match run_vectorized ?rs () with
    | stats -> (stats, None)
    | exception Vekt_error.Error err
      when m.config.recover && Vekt_error.recoverable err -> (
        let next =
          match ctx with
          | None -> None
          | Some c -> (
              match c.Checkpoint.latest with
              | Some (seq, path) when seq > last_seq -> (
                  try Some (seq, path, Checkpoint.read path)
                  with Vekt_error.Error (Vekt_error.Checkpoint _) ->
                    (* damaged snapshot: count the rejection, take the
                       next rung of the ladder *)
                    c.Checkpoint.rejected <- c.Checkpoint.rejected + 1;
                    None)
              | _ -> None)
        in
        match next with
        | Some (seq, path, s) ->
            (match ctx with
            | Some c ->
                c.Checkpoint.resumes <- c.Checkpoint.resumes + 1;
                if Vekt_obs.Sink.enabled sink then
                  Vekt_obs.Sink.emit sink
                    (Vekt_obs.Event.Ckpt_resume { ts = 0.0; worker = 0; seq; path })
            | None -> ());
            attempt ~rs:(Some s) ~last_seq:seq
        | None ->
            (match snapshot with
            | Some bytes ->
                Bytes.blit bytes 0 (Mem.bytes m.device.global) 0
                  (Bytes.length bytes)
            | None -> ());
            m.emulator_runs <- m.emulator_runs + 1;
            ignore
              (Emulator.run m.ast ~kernel ~args ~global:m.device.global ~grid
                 ~block);
            (Stats.create (), Some err))
  in
  (* Root span of the launch's trace.  The begin sits at modelled cycle 0
     on worker 0; the end is stamped with the launch's wall cycles (max
     over workers) so the span covers the whole modelled timeline.  Not
     exception-protected: a launch that dies leaves its root span open,
     which the crash bundle reports. *)
  let launch_span_name = Printf.sprintf "launch %s" kernel in
  if Vekt_obs.Sink.enabled sink then
    Vekt_obs.Sink.emit sink
      (Vekt_obs.Event.Span_begin
         { ts = 0.0; wall_us = Clock.now_us (); worker = 0;
           kind = Vekt_obs.Event.Sk_launch; name = launch_span_name });
  let stats, recovered =
    match !resume_rejected with
    | Some err ->
        (* the snapshot we were asked to resume from is unusable and
           nothing has run yet: go straight to the oracle *)
        m.emulator_runs <- m.emulator_runs + 1;
        ignore
          (Emulator.run m.ast ~kernel ~args ~global:m.device.global ~grid
             ~block);
        (Stats.create (), Some err)
    | None ->
        attempt
          ~rs:(Option.map snd resumed)
          ~last_seq:
            (match resumed with Some (_, s) -> s.Checkpoint.seq | None -> 0)
  in
  (* a schedule log is only meaningful for a clean, uninterrupted run *)
  (match (m.config.record, recorder, recovered) with
  | Some path, Some r, None
    when match ctx with Some c -> c.Checkpoint.resumes = 0 | None -> true ->
      Replay.save r ~path ~kernel ~grid ~block ~workers
  | _ -> ());
  if Vekt_obs.Sink.enabled sink then
    Vekt_obs.Sink.emit sink
      (Vekt_obs.Event.Span_end
         { ts = stats.Stats.wall_cycles; wall_us = Clock.now_us (); worker = 0;
           kind = Vekt_obs.Event.Sk_launch; name = launch_span_name });
  let cycles = Float.max stats.Stats.wall_cycles 1.0 in
  let time_s = cycles /. (m.device.machine.Machine.clock_ghz *. 1e9) in
  let flops = float_of_int stats.Stats.counters.Interp.flops in
  {
    stats;
    cycles;
    time_ms = time_s *. 1e3;
    gflops = (flops /. time_s) /. 1e9;
    avg_warp_size = Stats.average_warp_size stats;
    recovered;
  }

(** Export a launch report plus the kernel's JIT-cache state (hit/miss
    rates, per-specialization compile cost) into one metrics registry —
    the machine-readable form behind [vektc run --metrics]. *)
let metrics (m : modul) ~kernel (r : report) : Vekt_obs.Metrics.t =
  let reg = Stats.to_metrics r.stats in
  let module M = Vekt_obs.Metrics in
  M.set (M.gauge reg "launch.time_ms") r.time_ms;
  M.set (M.gauge reg "launch.gflops") r.gflops;
  (match Hashtbl.find_opt m.caches kernel with
  | Some c -> Translation_cache.metrics_into c reg
  | None -> ());
  M.counter reg "fallback.emulator_runs" := m.emulator_runs;
  Option.iter (fun f -> Fault.metrics_into f reg) m.fault;
  Option.iter (fun c -> Checkpoint.metrics_into c reg) m.last_ckpt;
  reg

(** Run the same launch through the reference PTX emulator (the oracle) on
    a copy of device memory; returns the resulting global memory for
    comparison with the vectorized pipeline's. *)
let launch_reference (m : modul) ~kernel ~grid ~block ~(args : Launch.arg list) :
    Mem.t =
  let global = Mem.copy m.device.global in
  ignore (Emulator.run m.ast ~kernel ~args ~global ~grid ~block);
  global
