(** Launch statistics collected by the execution managers.

    These are the raw series behind the paper's evaluation figures:
    warp-size histogram (Fig. 7), restores per entry (Fig. 8), cycle
    attribution between execution manager, yield handlers and subkernel
    bodies (Fig. 9), and total cycles (speedups, Fig. 6/10). *)

module Interp = Vekt_vm.Interp

type t = {
  counters : Interp.counters;  (** VM-side counters, summed over workers *)
  warp_hist : (int, int) Hashtbl.t;  (** warp size → kernel entries *)
  mutable em_cycles : float;  (** cycles modelled inside the execution manager *)
  mutable barrier_releases : int;
  mutable threads_launched : int;
  mutable wall_cycles : float;  (** max over workers (parallel execution) *)
}

let create () =
  {
    counters = Interp.fresh_counters ();
    warp_hist = Hashtbl.create 8;
    em_cycles = 0.0;
    barrier_releases = 0;
    threads_launched = 0;
    wall_cycles = 0.0;
  }

let record_warp t ws =
  Hashtbl.replace t.warp_hist ws (Option.value (Hashtbl.find_opt t.warp_hist ws) ~default:0 + 1)

(** Mean number of threads per formed warp (Figure 7's metric). *)
let average_warp_size t =
  let n = ref 0 and sum = ref 0 in
  Hashtbl.iter
    (fun ws count ->
      n := !n + count;
      sum := !sum + (ws * count))
    t.warp_hist;
  if !n = 0 then 0.0 else float_of_int !sum /. float_of_int !n

(** Fraction of kernel entries made at warp size [ws]. *)
let warp_fraction t ws =
  let total = Hashtbl.fold (fun _ c acc -> acc + c) t.warp_hist 0 in
  if total = 0 then 0.0
  else
    float_of_int (Option.value (Hashtbl.find_opt t.warp_hist ws) ~default:0)
    /. float_of_int total

(** Mean values restored per thread per kernel entry (Figure 8). *)
let average_restores_per_thread t =
  let entries_threads =
    Hashtbl.fold (fun ws count acc -> acc + (ws * count)) t.warp_hist 0
  in
  if entries_threads = 0 then 0.0
  else float_of_int t.counters.Interp.restores /. float_of_int entries_threads

(** Total modelled cycles: subkernel + yield handlers + execution manager.
    [wall_cycles] is the parallel (max-over-workers) version used for
    speedups; this is the serial sum used for attribution fractions. *)
let total_cycles t = Interp.total_cycles t.counters +. t.em_cycles

(** Figure 9's three fractions: (execution manager, yields, subkernel). *)
let cycle_breakdown t =
  let em = t.em_cycles +. t.counters.Interp.cycles_scheduler in
  let yield = t.counters.Interp.cycles_entry +. t.counters.Interp.cycles_exit in
  let body = t.counters.Interp.cycles_body in
  let total = em +. yield +. body in
  if total = 0.0 then (0.0, 0.0, 0.0)
  else (em /. total, yield /. total, body /. total)

(** Merge per-worker statistics into an aggregate; wall cycles take the
    maximum (workers run in parallel), everything else sums.  VM-side
    counters merge via {!Interp.merge_counters}, driven by the field
    tables in {!Interp} — one place to extend when adding a counter. *)
let merge_into ~(into : t) (w : t) =
  Interp.merge_counters ~into:into.counters w.counters;
  Hashtbl.iter
    (fun ws count ->
      Hashtbl.replace into.warp_hist ws
        (Option.value (Hashtbl.find_opt into.warp_hist ws) ~default:0 + count))
    w.warp_hist;
  into.em_cycles <- into.em_cycles +. w.em_cycles;
  into.barrier_releases <- into.barrier_releases + w.barrier_releases;
  into.threads_launched <- into.threads_launched + w.threads_launched;
  into.wall_cycles <- Float.max into.wall_cycles (total_cycles w)

(** Snapshot every statistic into a metrics registry (names are stable:
    [vm.*] for interpreter counters, [em.*] for execution-manager ones,
    [warp.*] for the formation histogram and derived means). *)
let to_metrics ?(metrics = Vekt_obs.Metrics.create ()) (t : t) :
    Vekt_obs.Metrics.t =
  let module M = Vekt_obs.Metrics in
  List.iter
    (fun (name, get, _) -> M.counter metrics ("vm." ^ name) := get t.counters)
    Interp.int_counter_fields;
  List.iter
    (fun (name, get, _) ->
      M.set (M.gauge metrics ("vm." ^ name)) (get t.counters))
    Interp.cycle_counter_fields;
  M.set (M.gauge metrics "em.cycles") t.em_cycles;
  M.counter metrics "em.barrier_releases" := t.barrier_releases;
  M.counter metrics "em.threads_launched" := t.threads_launched;
  M.set (M.gauge metrics "wall.cycles") t.wall_cycles;
  M.set (M.gauge metrics "total.cycles") (total_cycles t);
  let h = M.histogram metrics "warp.size" in
  Hashtbl.iter (fun ws count -> M.observe_n h ~bin:ws count) t.warp_hist;
  M.set (M.gauge metrics "warp.avg_size") (average_warp_size t);
  M.set
    (M.gauge metrics "warp.restores_per_thread")
    (average_restores_per_thread t);
  let em, yld, body = cycle_breakdown t in
  M.set (M.gauge metrics "breakdown.em") em;
  M.set (M.gauge metrics "breakdown.yield") yld;
  M.set (M.gauge metrics "breakdown.subkernel") body;
  metrics
