(** Domain-parallel launch driver (paper §5.2).

    The paper's execution managers are worker threads that each own a
    static partition of the grid's CTAs.  {!Exec_manager.launch_kernel}
    {e simulates} that partition on one OS thread (the modelled-cycle
    clocks are per worker, wall cycles take the max); this module runs
    it for real: the same per-worker CTA slices, executed on OCaml 5
    domains through the ordinary {!Exec_manager.run_cta} against the
    shared global segment and the shared {!Translation_cache}.

    Two knobs, deliberately separate:

    - [workers] is the {e modelled} partition width — worker [w] owns
      CTAs [w, w+workers, ...], exactly as in the serial simulation, so
      per-worker statistics (and the max-over-workers wall cycles) are
      identical whether the slices run on domains or in a loop.
    - [domains] is the {e physical} parallelism: how many OCaml domains
      execute those worker slices.  Domain [d] runs workers
      [d, d+domains, ...] sequentially.  It defaults to
      [min workers (Domain.recommended_domain_count ())] — OCaml's
      stop-the-world minor GC makes oversubscribing cores strictly
      counterproductive — and with [domains = 1] no domain is spawned
      at all: the launch degenerates to the exact serial loop.

    CTAs are mutually independent (shared memory and barriers are
    CTA-scope), writes to distinct global addresses land in a shared
    [Bytes.t], and global atomics serialize on a process-wide mutex in
    the interpreter — so the final global-memory image is bit-identical
    to a serial run.

    {b Determinism of the merged artifacts.}  Everything a worker
    produces is private to its slice while it runs and merged only
    after every domain has been joined, in worker-index order:

    - {!Stats.t}: integer totals are partition-independent; float
      cycle totals are merged in worker order, so they are reproducible
      run-to-run (across {e different} worker counts they agree up to
      float summation order, and [wall_cycles] — max over workers —
      genuinely models the parallelism).
    - Events: each worker emits into a private buffer; buffers are
      replayed into the caller's sink worker-by-worker, which
      reproduces exactly the order the serial simulation emits.
    - {!Obs.Divergence} profiles: one private profile per worker,
      {!Obs.Divergence.merge}d in worker order.

    A worker that raises aborts its domain's remaining slices; every
    domain is still joined before anything propagates, and the
    lowest-indexed worker's error is re-raised, so the error surfaced
    for a given failing launch does not depend on domain scheduling.

    Caveats, documented in DESIGN.md §3.4: {!Translation_cache.Tiered}
    promotion points and injected spurious yields depend on cross-domain
    query interleaving, so cycle-level statistics (never memory results)
    can vary run-to-run under those features with [domains > 1]. *)

module Interp = Vekt_vm.Interp
module Obs = Vekt_obs
open Vekt_ptx

(** Run a whole kernel launch: the grid's CTAs are statically
    partitioned over [workers] execution managers, executed on
    [domains] OCaml domains (see the module doc for the distinction).
    [workers] is clamped to [1 .. ncta] and [domains] to
    [1 .. workers].  Parameters otherwise mirror
    {!Exec_manager.launch_kernel}, which remains the single-threaded
    reference for this function.

    [ckpt] arms the checkpoint policy (DESIGN.md §3.5): the pool drives
    {!Exec_manager.run_cta}'s safe-point hooks and assembles whole-launch
    snapshots — every worker's stats and position plus the in-flight
    CTA.  [resume] starts the launch from such a snapshot instead of
    from scratch.  Either one forces [domains = 1]: a consistent cut
    needs at most one CTA in flight, and the modelled [workers]
    partition is what the snapshot preserves, so resuming a
    [--workers 4] launch still replays four modelled workers.  [record]
    and [replay] thread the schedule log through; recording is safe
    under domains (each CTA cell has a single writer). *)
let launch ?(costs = Exec_manager.default_costs) ?fuel ?watchdog
    ?(inject : Fault.t option) ?(workers = 1) ?domains
    ?(sink = Obs.Sink.noop) ?(profile : Obs.Divergence.t option)
    ?(attr : Obs.Attribution.t option) ?sched
    ?(ckpt : Checkpoint.ctx option) ?(resume : Checkpoint.t option)
    ?(record : Replay.recorder option) ?(replay : Replay.t option)
    (cache : Translation_cache.t) ~(grid : Launch.dim3) ~(block : Launch.dim3)
    ~(global : Mem.t) ~(params : Mem.t) ~(consts : Mem.t) : Stats.t =
  let ncta = Launch.count grid in
  let launch_info = { Interp.grid; block } in
  let workers = max 1 (min workers ncta) in
  let domains =
    if Option.is_some ckpt || Option.is_some resume then 1
    else
      let d =
        match domains with
        | Some d -> d
        | None -> Domain.recommended_domain_count ()
      in
      max 1 (min d workers)
  in
  (* fail a bad policy × mode combination before spawning anything *)
  Option.iter (Scheduler.validate ~mode:cache.Translation_cache.mode) sched;
  (match profile with
  | Some p ->
      Obs.Divergence.set_entry_names p (Translation_cache.entry_ids cache)
  | None -> ());
  (* Restore the launch-wide pieces of a snapshot before any CTA runs:
     the global image (live prefix; the rest zero-fills back to the
     untouched-allocator state), the parameter block, and the cache's
     hotness/quarantine metadata so recompilation lands each key at the
     tier it had reached — promotion decisions, and therefore dynamic
     instruction counts, match the uninterrupted run exactly. *)
  (match resume with
  | None -> ()
  | Some s ->
      Mem.load_image global s.Checkpoint.global_image;
      Mem.load_image params s.Checkpoint.params_image;
      Translation_cache.restore_meta cache ~hotness:s.Checkpoint.hotness
        ~quarantine:s.Checkpoint.quarantine);
  let run_worker ~parallel ~wsink ~wprofile ~wattr w (wstats : Stats.t) =
    let c = ref w in
    while !c < ncta do
      let ctaid = Launch.unlinear ~dims:grid !c in
      Exec_manager.run_cta ~costs ?fuel ?watchdog ?inject ~parallel
        ~sink:wsink ?profile:wprofile ?attr:wattr ~worker:w ?sched ?record
        ?replay cache ~launch:launch_info ~ctaid ~global ~params ~consts
        ~stats:wstats ();
      c := !c + workers
    done
  in
  let aggregate = Stats.create () in
  if domains = 1 then begin
    (* Per-worker launch state lives in arrays so a checkpoint taken
       while worker [w] is mid-CTA can record every sibling's stats and
       next-CTA position.  [next.(v)] is the CTA worker [v] is inside
       (while running) or would start next (between CTAs) — exactly the
       [w_next_cta] contract of {!Checkpoint.worker_snap}. *)
    let wstats =
      Array.init workers (fun w ->
          match resume with
          | Some s -> s.Checkpoint.worker_snaps.(w).Checkpoint.w_stats
          | None -> Stats.create ())
    in
    let next =
      Array.init workers (fun w ->
          match resume with
          | Some s -> s.Checkpoint.worker_snaps.(w).Checkpoint.w_next_cta
          | None -> w)
    in
    let inflight =
      Array.init workers (fun w ->
          match resume with
          | Some s -> s.Checkpoint.worker_snaps.(w).Checkpoint.w_inflight
          | None -> None)
    in
    let hooks_for (ctx : Checkpoint.ctx) w : Checkpoint.hooks =
      let write_snap ~fault ~now save =
        let worker_snaps =
          Array.init workers (fun v ->
              {
                Checkpoint.w_next_cta = next.(v);
                w_stats = wstats.(v);
                w_inflight = (if v = w then Some (save ()) else None);
              })
        in
        let hotness, quarantine = Translation_cache.export_meta cache in
        let snap =
          {
            Checkpoint.kernel = cache.Translation_cache.kernel_name;
            grid;
            block;
            workers;
            seq = ctx.Checkpoint.seq + 1;
            global_size = Bytes.length (Mem.bytes global);
            global_image = Mem.image ?live:ctx.Checkpoint.live_bytes global;
            params_image = Mem.image params;
            worker_snaps;
            fault_state = Option.map Fault.export_state inject;
            hotness;
            quarantine;
          }
        in
        let path, bytes = Checkpoint.write ~fault ctx snap in
        if not fault then begin
          if Obs.Sink.enabled sink then
            Obs.Sink.emit sink
              (Obs.Event.Ckpt_write
                 { ts = now; worker = w; seq = snap.Checkpoint.seq; bytes });
          Checkpoint.maybe_stop ctx path
        end
      in
      {
        Checkpoint.tick =
          (fun ~now ~save ->
            if Checkpoint.note_iter ctx then write_snap ~fault:false ~now save);
        on_fault = (fun ~now ~save -> write_snap ~fault:true ~now save);
      }
    in
    for w = 0 to workers - 1 do
      let hooks = Option.map (fun ctx -> hooks_for ctx w) ckpt in
      (* finish the CTA this worker was interrupted inside, if any *)
      (match inflight.(w) with
      | Some cs ->
          let c = next.(w) in
          let ctaid = Launch.unlinear ~dims:grid c in
          inflight.(w) <- None;
          Exec_manager.run_cta ~costs ?fuel ?watchdog ?inject ~parallel:false
            ~sink ?profile ?attr ~worker:w ?sched ?ckpt:hooks ~restore:cs
            ?record ?replay cache ~launch:launch_info ~ctaid ~global ~params
            ~consts ~stats:wstats.(w) ();
          next.(w) <- c + workers
      | None -> ());
      let c = ref next.(w) in
      while !c < ncta do
        next.(w) <- !c;
        let ctaid = Launch.unlinear ~dims:grid !c in
        Exec_manager.run_cta ~costs ?fuel ?watchdog ?inject ~parallel:false
          ~sink ?profile ?attr ~worker:w ?sched ?ckpt:hooks ?record ?replay
          cache ~launch:launch_info ~ctaid ~global ~params ~consts
          ~stats:wstats.(w) ();
        c := !c + workers;
        next.(w) <- !c
      done
    done;
    for w = 0 to workers - 1 do
      Stats.merge_into ~into:aggregate wstats.(w)
    done
  end
  else begin
    let wstats = Array.init workers (fun _ -> Stats.create ()) in
    let wprofiles =
      Array.init workers (fun _ ->
          Option.map (fun _ -> Obs.Divergence.create ()) profile)
    in
    (* per-worker attribution buckets, same private-then-merge discipline
       as profiles: Attribution.t wraps Hashtbls, which must not be
       shared across domains.  Integer unit sums are order-independent,
       so the worker-order merge conserves the total bit-exactly. *)
    let wattrs =
      Array.init workers (fun _ ->
          Option.map (fun _ -> Obs.Attribution.create ()) attr)
    in
    (* private reversed event buffer per worker; replayed post-join *)
    let buffers = Array.init workers (fun _ -> ref []) in
    let wsink w =
      if Obs.Sink.enabled sink then
        Obs.Sink.fn (fun e -> buffers.(w) := e :: !(buffers.(w)))
      else Obs.Sink.noop
    in
    (* domain d executes worker slices d, d+domains, ... in order; its
       result is the lowest worker index that failed, with the error *)
    let body d () =
      let rec slices w =
        if w >= workers then None
        else
          match
            run_worker ~parallel:true ~wsink:(wsink w)
              ~wprofile:wprofiles.(w) ~wattr:wattrs.(w) w wstats.(w)
          with
          | () -> slices (w + domains)
          | exception e -> Some (w, e, Printexc.get_raw_backtrace ())
      in
      slices d
    in
    let spawned = Array.init domains (fun d -> Domain.spawn (body d)) in
    (* join every domain before propagating anything, so a failure never
       leaks running workers; then surface the lowest worker's error *)
    let outcomes = Array.to_list (Array.map Domain.join spawned) in
    (match
       List.filter_map (fun o -> o) outcomes
       |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
     with
    | (_, e, bt) :: _ -> Printexc.raise_with_backtrace e bt
    | [] -> ());
    for w = 0 to workers - 1 do
      List.iter (Obs.Sink.emit sink) (List.rev !(buffers.(w)));
      (match (profile, wprofiles.(w)) with
      | Some into, Some p -> Obs.Divergence.merge ~into p
      | _ -> ());
      (match (attr, wattrs.(w)) with
      | Some into, Some a -> Obs.Attribution.merge ~into a
      | _ -> ());
      Stats.merge_into ~into:aggregate wstats.(w)
    done
  end;
  aggregate
