(** Checkpoint/restore of in-flight kernel launches (DESIGN.md §3.5).

    The paper's yield-on-diverge machinery makes a launch serializable
    for free: whenever control returns to the execution manager, every
    live register value has been spilled to the thread's local-memory
    slot by the subkernel's exit handler, and each thread context holds
    the entry-point id it resumes at.  At the top of the scheduling loop
    — the {e safe point} — no warp is executing, so the manager's entire
    state is a handful of arrays and memory images.  This module defines
    that snapshot, its versioned binary serialization with an integrity
    checksum, and the checkpoint policy ({!ctx}) the worker pool drives.

    A snapshot captures, per launch: the global-memory image (trimmed to
    the allocator watermark) and parameter block; per worker, its next
    CTA, accumulated {!Stats.t} and — for the worker interrupted
    mid-CTA — the CTA's thread contexts (resume entry ids + scheduler
    states), shared/local memory images, round-robin cursor, fuel
    consumed and watchdog stall counters; the fault injector's RNG word
    and counters; and the translation cache's hotness/quarantine
    metadata so a resumed launch recompiles each key at the tier it had
    reached (no repeated tier-0 warmup, identical promotion decisions).

    Serialization is little-endian with an MD5 digest over the payload;
    {!read}/{!of_bytes} reject truncation, corruption, or version skew
    with a structured {!Vekt_error.Checkpoint} — never a crash. *)

module Interp = Vekt_vm.Interp
module Io = Vekt_chaos.Io
open Vekt_ptx

(* ---- snapshot data model ---- *)

type thread_snap = {
  t_resume : int;  (** entry-point id the thread resumes at *)
  t_state : Scheduler.tstate;
}

(** One CTA interrupted at a safe point: everything {!Exec_manager.run_cta}
    owns between two scheduler iterations. *)
type cta_snap = {
  c_ctaid : Launch.dim3;
  c_shared : Bytes.t;  (** CTA shared-memory image *)
  c_local : Bytes.t;  (** local arena image (spilled registers live here) *)
  c_threads : thread_snap array;
  c_cursor : int;  (** round-robin scheduler cursor *)
  c_remaining : int;  (** threads not yet exited *)
  c_calls_used : int;  (** subkernel calls consumed from the fuel budget *)
  c_stalls : int array;  (** livelock-watchdog counters; [[||]] if unarmed *)
}

type worker_snap = {
  w_next_cta : int;
      (** the in-flight CTA's linear index when [w_inflight] is [Some],
          otherwise the next linear CTA this worker would start *)
  w_stats : Stats.t;  (** statistics accumulated up to the safe point *)
  w_inflight : cta_snap option;
}

type t = {
  kernel : string;
  grid : Launch.dim3;
  block : Launch.dim3;
  workers : int;  (** modelled partition width the snapshot assumes *)
  seq : int;  (** monotone sequence number within the launch *)
  global_size : int;  (** full global segment size, for validation *)
  global_image : Bytes.t;  (** live prefix (allocator watermark) *)
  params_image : Bytes.t;
  worker_snaps : worker_snap array;
  fault_state : int array option;  (** {!Fault.export_state}, when armed *)
  hotness : (int * string * int) list;  (** cache hotness: ws, digest, queries *)
  quarantine : (int * string * int) list;  (** active quarantine TTLs *)
}

(* ---- structured rejection ---- *)

let corrupt ~path reason =
  raise (Vekt_error.Error (Vekt_error.Checkpoint { path; what = "checkpoint"; reason }))

(* ---- binary serialization (version 1, little-endian) ---- *)

let magic = "VEKTCKPT"
let version = 1

(* Header: magic (8) + version (4) + MD5 of payload (16) + payload
   length (8) = 36 bytes, then the payload. *)
let header_bytes = 36

let put_i64 b n = Buffer.add_int64_le b (Int64.of_int n)
let put_f64 b x = Buffer.add_int64_le b (Int64.bits_of_float x)

let put_bytes b (s : Bytes.t) =
  put_i64 b (Bytes.length s);
  Buffer.add_bytes b s

let put_str b s =
  put_i64 b (String.length s);
  Buffer.add_string b s

let put_dim3 b (d : Launch.dim3) =
  put_i64 b d.Launch.x;
  put_i64 b d.Launch.y;
  put_i64 b d.Launch.z

let put_opt put b = function
  | None -> put_i64 b 0
  | Some v ->
      put_i64 b 1;
      put b v

let tstate_code = function
  | Scheduler.Ready -> 0
  | Scheduler.Blocked -> 1
  | Scheduler.Done -> 2

(* Stats serialize through the {!Interp} counter field tables, so a new
   counter added there is picked up here without touching this file.
   The warp histogram is sorted for a canonical byte stream. *)
let put_stats b (s : Stats.t) =
  List.iter
    (fun (_, get, _) -> put_i64 b (get s.Stats.counters))
    Interp.int_counter_fields;
  List.iter
    (fun (_, get, _) -> put_f64 b (get s.Stats.counters))
    Interp.cycle_counter_fields;
  put_f64 b s.Stats.em_cycles;
  put_i64 b s.Stats.barrier_releases;
  put_i64 b s.Stats.threads_launched;
  put_f64 b s.Stats.wall_cycles;
  let hist =
    Hashtbl.fold (fun ws c acc -> (ws, c) :: acc) s.Stats.warp_hist []
    |> List.sort compare
  in
  put_i64 b (List.length hist);
  List.iter
    (fun (ws, c) ->
      put_i64 b ws;
      put_i64 b c)
    hist

let put_cta b (c : cta_snap) =
  put_dim3 b c.c_ctaid;
  put_bytes b c.c_shared;
  put_bytes b c.c_local;
  put_i64 b (Array.length c.c_threads);
  Array.iter
    (fun th ->
      put_i64 b th.t_resume;
      put_i64 b (tstate_code th.t_state))
    c.c_threads;
  put_i64 b c.c_cursor;
  put_i64 b c.c_remaining;
  put_i64 b c.c_calls_used;
  put_i64 b (Array.length c.c_stalls);
  Array.iter (put_i64 b) c.c_stalls

let put_meta b (entries : (int * string * int) list) =
  put_i64 b (List.length entries);
  List.iter
    (fun (ws, digest, v) ->
      put_i64 b ws;
      put_str b digest;
      put_i64 b v)
    entries

let encode (t : t) : Bytes.t =
  let b = Buffer.create 4096 in
  put_str b t.kernel;
  put_dim3 b t.grid;
  put_dim3 b t.block;
  put_i64 b t.workers;
  put_i64 b t.seq;
  put_i64 b t.global_size;
  put_bytes b t.global_image;
  put_bytes b t.params_image;
  put_i64 b (Array.length t.worker_snaps);
  Array.iter
    (fun w ->
      put_i64 b w.w_next_cta;
      put_stats b w.w_stats;
      put_opt put_cta b w.w_inflight)
    t.worker_snaps;
  put_opt
    (fun b a ->
      put_i64 b (Array.length a);
      Array.iter (put_i64 b) a)
    b t.fault_state;
  put_meta b t.hotness;
  put_meta b t.quarantine;
  Buffer.to_bytes b

let to_bytes (t : t) : Bytes.t =
  let payload = encode t in
  let b = Buffer.create (header_bytes + Bytes.length payload) in
  Buffer.add_string b magic;
  Buffer.add_int32_le b (Int32.of_int version);
  Buffer.add_string b (Digest.bytes payload);
  Buffer.add_int64_le b (Int64.of_int (Bytes.length payload));
  Buffer.add_bytes b payload;
  Buffer.to_bytes b

(* ---- deserialization ---- *)

type reader = { data : Bytes.t; mutable pos : int; path : string }

let need r n =
  if n < 0 || r.pos + n > Bytes.length r.data then
    corrupt ~path:r.path "truncated payload"

let get_i64 r =
  need r 8;
  let v = Bytes.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  Int64.to_int v

let get_f64 r =
  need r 8;
  let v = Bytes.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  Int64.float_of_bits v

let get_len r what =
  let n = get_i64 r in
  if n < 0 then corrupt ~path:r.path (Fmt.str "negative %s length" what);
  n

let get_bytes r =
  let n = get_len r "bytes" in
  need r n;
  let s = Bytes.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let get_str r = Bytes.to_string (get_bytes r)

let get_dim3 r =
  let x = get_i64 r in
  let y = get_i64 r in
  let z = get_i64 r in
  { Launch.x; y; z }

let get_opt get r =
  match get_i64 r with
  | 0 -> None
  | 1 -> Some (get r)
  | n -> corrupt ~path:r.path (Fmt.str "bad option tag %d" n)

let get_tstate r =
  match get_i64 r with
  | 0 -> Scheduler.Ready
  | 1 -> Scheduler.Blocked
  | 2 -> Scheduler.Done
  | n -> corrupt ~path:r.path (Fmt.str "bad thread-state code %d" n)

let get_stats r : Stats.t =
  let s = Stats.create () in
  List.iter
    (fun (_, _, set) -> set s.Stats.counters (get_i64 r))
    Interp.int_counter_fields;
  List.iter
    (fun (_, _, set) -> set s.Stats.counters (get_f64 r))
    Interp.cycle_counter_fields;
  s.Stats.em_cycles <- get_f64 r;
  s.Stats.barrier_releases <- get_i64 r;
  s.Stats.threads_launched <- get_i64 r;
  s.Stats.wall_cycles <- get_f64 r;
  let nhist = get_len r "warp-histogram" in
  for _ = 1 to nhist do
    let ws = get_i64 r in
    let c = get_i64 r in
    Hashtbl.replace s.Stats.warp_hist ws c
  done;
  s

let get_cta r : cta_snap =
  let c_ctaid = get_dim3 r in
  let c_shared = get_bytes r in
  let c_local = get_bytes r in
  let nthreads = get_len r "thread array" in
  let c_threads =
    Array.init nthreads (fun _ ->
        let t_resume = get_i64 r in
        let t_state = get_tstate r in
        { t_resume; t_state })
  in
  let c_cursor = get_i64 r in
  let c_remaining = get_i64 r in
  let c_calls_used = get_i64 r in
  let nstalls = get_len r "stall array" in
  let c_stalls = Array.init nstalls (fun _ -> get_i64 r) in
  { c_ctaid; c_shared; c_local; c_threads; c_cursor; c_remaining; c_calls_used;
    c_stalls }

let get_meta r =
  let n = get_len r "metadata list" in
  List.init n (fun _ ->
      let ws = get_i64 r in
      let digest = get_str r in
      let v = get_i64 r in
      (ws, digest, v))

let decode r : t =
  let kernel = get_str r in
  let grid = get_dim3 r in
  let block = get_dim3 r in
  let workers = get_i64 r in
  let seq = get_i64 r in
  let global_size = get_i64 r in
  let global_image = get_bytes r in
  let params_image = get_bytes r in
  let nworkers = get_len r "worker array" in
  let worker_snaps =
    Array.init nworkers (fun _ ->
        let w_next_cta = get_i64 r in
        let w_stats = get_stats r in
        let w_inflight = get_opt get_cta r in
        { w_next_cta; w_stats; w_inflight })
  in
  let fault_state =
    get_opt
      (fun r ->
        let n = get_len r "fault-state array" in
        Array.init n (fun _ -> get_i64 r))
      r
  in
  let hotness = get_meta r in
  let quarantine = get_meta r in
  { kernel; grid; block; workers; seq; global_size; global_image; params_image;
    worker_snaps; fault_state; hotness; quarantine }

(** Decode a serialized snapshot, validating the magic, version,
    length and MD5 integrity digest; every defect raises a structured
    {!Vekt_error.Checkpoint} naming [path]. *)
let of_bytes ~path (data : Bytes.t) : t =
  if Bytes.length data < header_bytes then corrupt ~path "truncated header";
  if Bytes.sub_string data 0 8 <> magic then corrupt ~path "bad magic";
  let v = Int32.to_int (Bytes.get_int32_le data 8) in
  if v <> version then
    corrupt ~path (Fmt.str "unsupported snapshot version %d (want %d)" v version);
  let stored_digest = Bytes.sub_string data 12 16 in
  let plen = Int64.to_int (Bytes.get_int64_le data 28) in
  if plen < 0 || header_bytes + plen > Bytes.length data then
    corrupt ~path "truncated payload";
  if header_bytes + plen < Bytes.length data then
    corrupt ~path "trailing bytes after payload";
  if Digest.subbytes data header_bytes plen <> stored_digest then
    corrupt ~path "integrity checksum mismatch";
  let r = { data = Bytes.sub data header_bytes plen; pos = 0; path } in
  let t = decode r in
  if r.pos <> plen then corrupt ~path "trailing bytes in payload";
  t

(** Read and validate a snapshot file. *)
let read (path : string) : t =
  let data =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error msg -> corrupt ~path msg
  in
  of_bytes ~path (Bytes.unsafe_of_string data)

(* ---- checkpoint policy ---- *)

(** Raised when a launch was asked to stop after its Nth snapshot
    ([stop_after], [vektc run --checkpoint-stop]); carries the path of
    the snapshot to resume from.  This is the forced-preemption hook the
    cross-process resume tests and CI legs use. *)
exception Stop of string

(** Asynchronous preemption token.  The daemon's admission queue hands
    one to each preemptible launch; {!request_preempt} may be called
    from any domain (e.g. the server loop, on arrival of a
    higher-priority job) and the launch observes it at its next safe
    point: {!note_iter} reports a snapshot due, and {!maybe_stop}
    consumes the request and raises {!Stop} with the snapshot path to
    resume from.  An un-requested token costs one atomic load per
    scheduler iteration. *)
type preempt = bool Atomic.t

let preempt_token () : preempt = Atomic.make false
let request_preempt (p : preempt) = Atomic.set p true
let preempt_requested (p : preempt) = Atomic.get p

(** Per-launch checkpoint policy and bookkeeping, shared by every
    worker (checkpointing forces the worker pool serial, so no lock). *)
type ctx = {
  dir : string;
  every : int;  (** snapshot every N scheduler iterations; 0 = never *)
  stop_after : int option;  (** raise {!Stop} after this many snapshots *)
  preempt : preempt option;  (** async preemption token, when armed *)
  live_bytes : int option;  (** allocator watermark bounding the global image *)
  kernel : string;  (** kernel name, for the structured deadline error *)
  start_us : float;  (** monotonic launch start, deadline reference point *)
  deadline_us : float option;
      (** absolute monotonic wall deadline; past it the launch snapshots
          at its next safe point and dies with {!Vekt_error.Deadline} *)
  mutable iter : int;  (** scheduler iterations observed this launch *)
  mutable seq : int;  (** last sequence number written *)
  mutable latest : (int * string) option;  (** newest valid snapshot *)
  mutable writes : int;
  mutable bytes_written : int;
  mutable write_us : float;  (** wall time spent serializing + writing *)
  mutable resumes : int;  (** times this launch resumed from a snapshot *)
  mutable rejected : int;  (** snapshots refused by integrity validation *)
  mutable preempted : int;  (** preemption requests honored at a safe point *)
  mutable deadline_kills : int;  (** deadline expiries honored at a safe point *)
}

let create_ctx ?(dir = "vekt-ckpt") ?stop_after ?preempt ?live_bytes
    ?(kernel = "") ?deadline_ms ~every () : ctx =
  let start_us = Clock.now_us () in
  {
    dir;
    every = max 0 every;
    stop_after;
    preempt;
    live_bytes;
    kernel;
    start_us;
    deadline_us =
      Option.map (fun ms -> start_us +. (float_of_int ms *. 1000.)) deadline_ms;
    iter = 0;
    seq = 0;
    latest = None;
    writes = 0;
    bytes_written = 0;
    write_us = 0.0;
    resumes = 0;
    rejected = 0;
    preempted = 0;
    deadline_kills = 0;
  }

let deadline_exceeded (ctx : ctx) =
  match ctx.deadline_us with
  | Some d -> Clock.now_us () > d
  | None -> false

(** Count one scheduler iteration; [true] when the policy says a
    snapshot is due now — on the periodic schedule, because an
    asynchronous preemption request is pending, or because the launch
    has blown its deadline and must snapshot its partial progress
    before it is killed. *)
let note_iter (ctx : ctx) : bool =
  ctx.iter <- ctx.iter + 1;
  (ctx.every > 0 && ctx.iter mod ctx.every = 0)
  || (match ctx.preempt with Some p -> preempt_requested p | None -> false)
  || deadline_exceeded ctx

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Io.mkdir dir 0o755 with Unix.Unix_error _ -> () | Sys_error _ -> ()

(** Serialize [t] to [ctx.dir] (atomically and durably: temp file,
    fsync, rename, directory fsync — see {!Vekt_chaos.Io.save_atomic}).
    Returns the path and on-disk size.  [fault] marks a diagnostic
    snapshot written on watchdog fire: it gets a distinct suffix and is
    {e not} recorded as the latest resume candidate, since resuming a
    deterministic deadlock would re-raise it forever. *)
let write ?(fault = false) (ctx : ctx) (t : t) : string * int =
  ensure_dir ctx.dir;
  let t0 = Clock.now_us () in
  let data = to_bytes t in
  let path =
    Filename.concat ctx.dir
      (if fault then Fmt.str "%s-fault.ckpt" t.kernel
       else Fmt.str "%s-%06d.ckpt" t.kernel t.seq)
  in
  Io.save_atomic ~path (Bytes.unsafe_to_string data);
  ctx.writes <- ctx.writes + 1;
  ctx.bytes_written <- ctx.bytes_written + Bytes.length data;
  ctx.write_us <- ctx.write_us +. Clock.elapsed_us t0;
  if not fault then begin
    ctx.seq <- t.seq;
    ctx.latest <- Some (t.seq, path)
  end;
  (path, Bytes.length data)

(** Raise {!Stop} when the stop-after-N-snapshots policy has been met,
    or when an asynchronous preemption request is pending (the request
    is consumed, so the resumed launch starts with a clean token); or
    raise a structured {!Vekt_error.Deadline} when the launch has
    exceeded its wall-clock budget — the snapshot just written at [path]
    is named in the error so partial span/attribution data survives. *)
let maybe_stop (ctx : ctx) path =
  if deadline_exceeded ctx then begin
    ctx.deadline_kills <- ctx.deadline_kills + 1;
    let elapsed_ms =
      int_of_float ((Clock.now_us () -. ctx.start_us) /. 1000.)
    in
    let deadline_ms =
      match ctx.deadline_us with
      | Some d -> int_of_float ((d -. ctx.start_us) /. 1000.)
      | None -> 0
    in
    raise
      (Vekt_error.Error
         (Vekt_error.Deadline
            { kernel = ctx.kernel; deadline_ms; elapsed_ms;
              snapshot = Some path }))
  end;
  (match ctx.preempt with
  | Some p when preempt_requested p ->
      Atomic.set p false;
      ctx.preempted <- ctx.preempted + 1;
      raise (Stop path)
  | _ -> ());
  match ctx.stop_after with
  | Some k when ctx.seq >= k -> raise (Stop path)
  | _ -> ()

(** Checkpoint callbacks threaded into {!Exec_manager.run_cta}.  [save]
    builds the in-flight CTA's snapshot only when the policy actually
    fires, so an un-due iteration costs one counter bump. *)
type hooks = {
  tick : now:float -> save:(unit -> cta_snap) -> unit;
      (** called at the top of every scheduler iteration (the safe point) *)
  on_fault : now:float -> save:(unit -> cta_snap) -> unit;
      (** called when a watchdog is about to raise {!Vekt_error.Deadlock} *)
}

let metrics_into (ctx : ctx) (m : Vekt_obs.Metrics.t) =
  let module M = Vekt_obs.Metrics in
  M.counter m "ckpt.writes" := ctx.writes;
  M.counter m "ckpt.bytes_written" := ctx.bytes_written;
  M.counter m "ckpt.snapshots" := ctx.seq;
  M.counter m "ckpt.resumes" := ctx.resumes;
  M.counter m "ckpt.rejected" := ctx.rejected;
  M.counter m "ckpt.preemptions" := ctx.preempted;
  M.counter m "ckpt.deadline_kills" := ctx.deadline_kills;
  M.set (M.gauge m "ckpt.write_us") ctx.write_us

(* ---- restart recovery ---- *)

(** Scan [dir] for the newest valid (non-fault) snapshot.  Used by the
    daemon's restart-recovery path: after a kill -9, the job directory
    of every launch that was in flight still holds its last snapshot,
    and this picks the resume candidate the PR 5 ladder should try
    first.  Corrupt or truncated snapshots are skipped, not fatal — a
    crash mid-[write] leaves at most a [.tmp] (never renamed) or an
    older complete snapshot, both handled here. *)
let newest_snapshot ~dir : string option =
  match Sys.readdir dir with
  | exception Sys_error _ -> None
  | names ->
      Array.to_list names
      |> List.filter (fun n ->
             Filename.check_suffix n ".ckpt"
             && not (Filename.check_suffix n "-fault.ckpt"))
      |> List.filter_map (fun n ->
             let path = Filename.concat dir n in
             match read path with
             | snap -> Some (snap.seq, path)
             | exception Vekt_error.Error _ -> None)
      |> List.sort (fun (a, _) (b, _) -> compare b a)
      |> function
      | (_, path) :: _ -> Some path
      | [] -> None
