(** Monotonic wall-clock time for the runtime's self-measurement.

    [Unix.gettimeofday] is subject to NTP slews and steps, so deltas
    taken across a clock adjustment can go negative or double-count —
    visible as nonsense [compile_wall_us] once several workers compile
    concurrently.  This module reads [clock_gettime(CLOCK_MONOTONIC)]
    through a tiny C stub: readings never go backwards, and are safe to
    take from any domain. *)

external now_ns : unit -> (int64[@unboxed])
  = "vekt_clock_monotonic_ns_byte" "vekt_clock_monotonic_ns"
[@@noalloc]

(** Monotonic timestamp in microseconds.  Only differences are
    meaningful; the epoch is unspecified (boot time on Linux). *)
let now_us () = Int64.to_float (now_ns ()) /. 1e3

(** Elapsed microseconds since [t0] (a {!now_us} reading), clamped
    non-negative as a last line of defence. *)
let elapsed_us t0 = Float.max 0.0 (now_us () -. t0)
