(** Post-launch reports: the human- and machine-readable rendering of
    one launch's observability artifacts (the [vektc run --report]
    output), plus the crash bundle dumped when a launch dies.

    A report folds together the four instrumentation streams the
    runtime already produces — the span tree rebuilt from the event
    ring ({!Vekt_obs.Span}), the per-source-line cycle attribution
    ({!Vekt_obs.Attribution}), the divergence profile
    ({!Vekt_obs.Divergence}) and the cache/compile events — and
    renders:

    - a per-phase latency breakdown (wall µs {e and} modelled cycles
      per span kind, with exact p50/p95/p99 over the per-span wall
      durations);
    - the hottest source lines, annotated with the PTX source text;
    - divergence hotspots (re-entry points below full width);
    - the cache-tier timeline (hit/miss/compile/fallback/quarantine
      events in modelled-cycle order).

    Units: 1 modelled cycle = 1 µs of trace time (DESIGN.md §3.6);
    wall microseconds come from the monotonic {!Clock} and measure the
    host, not the model. *)

module Obs = Vekt_obs
module Timing = Vekt_vm.Timing
module Interp = Vekt_vm.Interp

(* ---- small JSON helpers (same conventions as the other exporters) ---- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_str b s =
  Buffer.add_char b '"';
  json_escape b s;
  Buffer.add_char b '"'

let add_num b x =
  if Float.is_nan x then Buffer.add_string b "0"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" x)
  else Buffer.add_string b (Printf.sprintf "%.3f" x)

(* ---- per-phase aggregation ---- *)

type phase = {
  ph_kind : string;
  ph_count : int;
  ph_wall_us : float;  (** summed wall width of the kind's spans *)
  ph_cycles : float;  (** summed modelled width *)
  ph_p50 : int;  (** percentiles of per-span wall µs, exact *)
  ph_p95 : int;
  ph_p99 : int;
}

(* Span kinds in report order: load-time phases, then the launch
   hierarchy outside-in, then JIT work. *)
let kind_order =
  [
    Obs.Event.Sk_queue; Obs.Event.Sk_parse; Obs.Event.Sk_typecheck;
    Obs.Event.Sk_launch; Obs.Event.Sk_cta; Obs.Event.Sk_subkernel;
    Obs.Event.Sk_cache_lookup; Obs.Event.Sk_compile; Obs.Event.Sk_pass;
  ]

let phases_of_forest (f : Obs.Span.forest) : phase list =
  let reg = Obs.Metrics.create () in
  let tally :
      (Obs.Event.span_kind, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (s : Obs.Span.t) ->
      let count, wall, cyc =
        match Hashtbl.find_opt tally s.Obs.Span.kind with
        | Some cell -> cell
        | None ->
            let cell = (ref 0, ref 0.0, ref 0.0) in
            Hashtbl.replace tally s.Obs.Span.kind cell;
            cell
      in
      incr count;
      wall := !wall +. Obs.Span.wall_us s;
      cyc := !cyc +. Obs.Span.cycles s;
      Obs.Metrics.observe
        (Obs.Metrics.histogram reg (Obs.Event.span_kind_name s.Obs.Span.kind))
        (int_of_float (Float.round (Obs.Span.wall_us s))))
    (Obs.Span.flatten f);
  List.filter_map
    (fun kind ->
      match Hashtbl.find_opt tally kind with
      | None -> None
      | Some (count, wall, cyc) ->
          let name = Obs.Event.span_kind_name kind in
          let p50, p95, p99 =
            Obs.Metrics.percentiles (Obs.Metrics.histogram reg name)
          in
          Some
            {
              ph_kind = name;
              ph_count = !count;
              ph_wall_us = !wall;
              ph_cycles = !cyc;
              ph_p50 = p50;
              ph_p95 = p95;
              ph_p99 = p99;
            })
    kind_order

(* ---- hottest source lines ---- *)

type hot_line = {
  hl_line : int;  (** 0 = runtime overhead (no source provenance) *)
  hl_cycles : float;
  hl_share : float;  (** fraction of the attributed total, [0;1] *)
  hl_text : string;  (** source text of the line ("" for line 0) *)
}

let source_line src n =
  if n <= 0 then ""
  else
    match List.nth_opt (String.split_on_char '\n' src) (n - 1) with
    | Some s -> String.trim s
    | None -> ""

let hot_lines ?(top = 10) ~src (attr : Obs.Attribution.t) : hot_line list =
  let total = attr.Obs.Attribution.total_units in
  List.map
    (fun (line, units) ->
      {
        hl_line = line;
        hl_cycles = float_of_int units /. float_of_int Timing.attr_scale;
        hl_share =
          (if total = 0 then 0.0 else float_of_int units /. float_of_int total);
        hl_text = source_line src line;
      })
    (Obs.Attribution.hottest ~n:top attr)

(* ---- cache-tier timeline ---- *)

let cache_timeline (evts : Obs.Event.t list) =
  List.filter_map
    (fun (e : Obs.Event.t) ->
      match e with
      | Obs.Event.Cache_hit v ->
          Some (v.ts, v.worker, "hit", [ ("ws", string_of_int v.ws) ])
      | Obs.Event.Cache_miss v ->
          Some (v.ts, v.worker, "miss", [ ("ws", string_of_int v.ws) ])
      | Obs.Event.Compile_end v ->
          Some
            ( v.ts,
              v.worker,
              "compile",
              [
                ("ws", string_of_int v.ws);
                ("tier", string_of_int v.tier);
                ("wall_us", Printf.sprintf "%.1f" v.wall_us);
              ] )
      | Obs.Event.Compile_fallback v ->
          Some
            ( v.ts,
              v.worker,
              "fallback",
              [
                ("from_ws", string_of_int v.from_ws);
                ("to_ws", string_of_int v.to_ws);
              ] )
      | Obs.Event.Quarantine v ->
          Some
            ( v.ts,
              v.worker,
              "quarantine",
              [
                ("ws", string_of_int v.ws);
                ("action", Obs.Event.quarantine_action_name v.action);
              ] )
      | _ -> None)
    evts

(* ---- the report ---- *)

type t = {
  kernel : string;
  workers : int;
  launch : Api.report;
  forest : Obs.Span.forest;
  phases : phase list;
  hot : hot_line list;
  timeline : (float * int * string * (string * string) list) list;
  attr : Obs.Attribution.t;
  profile : Obs.Divergence.t option;
}

(** Assemble a report from one launch's artifacts.  [src] is the PTX
    source the line attribution annotates; [top] bounds the hot-line
    table. *)
let build ?(top = 10) ~kernel ~src ~workers ~(trace : Obs.Trace.t)
    ~(attr : Obs.Attribution.t) ?(profile : Obs.Divergence.t option)
    (launch : Api.report) : t =
  let evts = Obs.Trace.events trace in
  let forest = Obs.Span.of_events evts in
  {
    kernel;
    workers;
    launch;
    forest;
    phases = phases_of_forest forest;
    hot = hot_lines ~top ~src attr;
    timeline = cache_timeline evts;
    attr;
    profile;
  }

(** Machine-readable form.  Top-level keys: [kernel], [launch],
    [phases], [hot_lines], [divergence], [cache_timeline], [spans],
    [attribution]. *)
let to_json (r : t) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"kernel\":";
  add_str b r.kernel;
  Buffer.add_string b (Printf.sprintf ",\"workers\":%d" r.workers);
  (* launch summary *)
  Buffer.add_string b ",\"launch\":{\"cycles\":";
  add_num b r.launch.Api.cycles;
  Buffer.add_string b ",\"time_ms\":";
  add_num b r.launch.Api.time_ms;
  Buffer.add_string b ",\"gflops\":";
  add_num b r.launch.Api.gflops;
  Buffer.add_string b ",\"avg_warp_size\":";
  add_num b r.launch.Api.avg_warp_size;
  let warps =
    Hashtbl.fold
      (fun _ c acc -> acc + c)
      r.launch.Api.stats.Stats.warp_hist 0
  in
  Buffer.add_string b
    (Printf.sprintf ",\"threads\":%d,\"warps\":%d"
       r.launch.Api.stats.Stats.threads_launched warps);
  Buffer.add_string b ",\"recovered\":";
  (match r.launch.Api.recovered with
  | None -> Buffer.add_string b "null"
  | Some err -> add_str b (Vekt_error.to_string err));
  Buffer.add_string b "}";
  (* per-phase breakdown *)
  Buffer.add_string b ",\"phases\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"kind\":";
      add_str b p.ph_kind;
      Buffer.add_string b (Printf.sprintf ",\"count\":%d" p.ph_count);
      Buffer.add_string b ",\"wall_us\":";
      add_num b p.ph_wall_us;
      Buffer.add_string b ",\"cycles\":";
      add_num b p.ph_cycles;
      Buffer.add_string b
        (Printf.sprintf ",\"wall_us_p50\":%d,\"wall_us_p95\":%d,\"wall_us_p99\":%d}"
           p.ph_p50 p.ph_p95 p.ph_p99))
    r.phases;
  Buffer.add_string b "]";
  (* hottest source lines *)
  Buffer.add_string b ",\"hot_lines\":[";
  List.iteri
    (fun i hl ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "{\"line\":%d,\"cycles\":" hl.hl_line);
      add_num b hl.hl_cycles;
      Buffer.add_string b ",\"share\":";
      Buffer.add_string b (Printf.sprintf "%.4f" hl.hl_share);
      Buffer.add_string b ",\"text\":";
      add_str b hl.hl_text;
      Buffer.add_char b '}')
    r.hot;
  Buffer.add_string b "]";
  (* divergence hotspots *)
  Buffer.add_string b ",\"divergence\":";
  (match r.profile with
  | None -> Buffer.add_string b "null"
  | Some p ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"warps\":%d,\"threads\":%d,\"restores\":%d,\"spills\":%d,\"entries\":["
           (Obs.Divergence.total_entries p)
           (Obs.Divergence.total_threads p)
           (Obs.Divergence.total_restores p)
           (Obs.Divergence.total_spills p));
      List.iteri
        (fun i id ->
          if i > 0 then Buffer.add_char b ',';
          let ep = Hashtbl.find p.Obs.Divergence.by_entry id in
          Buffer.add_string b (Printf.sprintf "{\"entry\":%d,\"name\":" id);
          add_str b (Obs.Divergence.entry_name p id);
          Buffer.add_string b
            (Printf.sprintf ",\"warps\":%d,\"avg_ws\":%.3f,\"restores\":%d}"
               ep.Obs.Divergence.entries (Obs.Divergence.avg_ws ep)
               ep.Obs.Divergence.restores))
        (Obs.Divergence.entry_ids p);
      Buffer.add_string b "]}");
  (* cache timeline *)
  Buffer.add_string b ",\"cache_timeline\":[";
  List.iteri
    (fun i (ts, worker, what, kv) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"ts\":";
      add_num b ts;
      Buffer.add_string b (Printf.sprintf ",\"worker\":%d,\"event\":" worker);
      add_str b what;
      List.iter
        (fun (k, v) ->
          Buffer.add_char b ',';
          add_str b k;
          Buffer.add_char b ':';
          match int_of_string_opt v with
          | Some n -> Buffer.add_string b (string_of_int n)
          | None -> add_str b v)
        kv;
      Buffer.add_char b '}')
    r.timeline;
  Buffer.add_string b "]";
  (* sub-documents already rendered as JSON by their own modules *)
  Buffer.add_string b ",\"spans\":";
  Buffer.add_string b (Obs.Span.to_json r.forest);
  Buffer.add_string b ",\"attribution\":";
  Buffer.add_string b (Obs.Attribution.to_json ~scale:Timing.attr_scale r.attr);
  Buffer.add_char b '}';
  Buffer.contents b

(** Human-readable rendering (the [--report -] form). *)
let pp ppf (r : t) =
  Fmt.pf ppf "launch report: %s  (%d workers)@." r.kernel r.workers;
  Fmt.pf ppf "  %.1f modelled cycles, %.3f ms, %.2f GFLOP/s, avg warp %.2f@."
    r.launch.Api.cycles r.launch.Api.time_ms r.launch.Api.gflops
    r.launch.Api.avg_warp_size;
  (match r.launch.Api.recovered with
  | None -> ()
  | Some err ->
      Fmt.pf ppf "  RECOVERED onto the emulator oracle from: %s@."
        (Vekt_error.to_string err));
  Fmt.pf ppf "@.phase breakdown (wall µs / modelled cycles):@.";
  Fmt.pf ppf "  %-14s %6s %12s %12s %8s %8s %8s@." "phase" "count" "wall_us"
    "cycles" "p50us" "p95us" "p99us";
  List.iter
    (fun p ->
      Fmt.pf ppf "  %-14s %6d %12.1f %12.1f %8d %8d %8d@." p.ph_kind p.ph_count
        p.ph_wall_us p.ph_cycles p.ph_p50 p.ph_p95 p.ph_p99)
    r.phases;
  if not (Obs.Span.balanced r.forest) then
    Fmt.pf ppf "  (span tree UNBALANCED: %d open, %d unmatched ends)@."
      (List.length r.forest.Obs.Span.open_spans)
      r.forest.Obs.Span.unmatched_ends;
  Fmt.pf ppf "@.hottest source lines (%.1f cycles attributed, conserved=%b):@."
    (float_of_int r.attr.Obs.Attribution.total_units
    /. float_of_int Timing.attr_scale)
    (Obs.Attribution.conserved r.attr);
  Fmt.pf ppf "  %5s %12s %6s  %s@." "line" "cycles" "share" "source";
  List.iter
    (fun hl ->
      let label =
        if hl.hl_line = 0 then "(runtime overhead)" else hl.hl_text
      in
      Fmt.pf ppf "  %5d %12.1f %5.1f%%  %s@." hl.hl_line hl.hl_cycles
        (100.0 *. hl.hl_share) label)
    r.hot;
  (match r.profile with
  | None -> ()
  | Some p ->
      Fmt.pf ppf "@.";
      Obs.Divergence.report ppf p);
  let hits, misses, compiles, fallbacks =
    List.fold_left
      (fun (h, m, c, f) (_, _, what, _) ->
        match what with
        | "hit" -> (h + 1, m, c, f)
        | "miss" -> (h, m + 1, c, f)
        | "compile" -> (h, m, c + 1, f)
        | "fallback" -> (h, m, c, f + 1)
        | _ -> (h, m, c, f))
      (0, 0, 0, 0) r.timeline
  in
  Fmt.pf ppf
    "@.cache timeline: %d events (%d hits, %d misses, %d compiles, %d \
     fallbacks)@."
    (List.length r.timeline) hits misses compiles fallbacks;
  List.iter
    (fun (ts, worker, what, kv) ->
      Fmt.pf ppf "  %12.1f w%d %-10s %s@." ts worker what
        (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) kv)))
    r.timeline

let render (r : t) : string = Fmt.str "%a" pp r

(* ---- crash bundle (the flight recorder's black box) ---- *)

(** The bundle dumped when a launch dies on a structured error: the tail
    of the event ring (what just happened), the spans still open (where
    was everyone), and a metrics snapshot if one exists.  [tail] bounds
    the ring excerpt. *)
let crash_bundle ?(tail = 64) ~kernel ~(error : Vekt_error.t)
    ~(trace : Obs.Trace.t) ?(metrics : Obs.Metrics.t option) () : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"kernel\":";
  add_str b kernel;
  Buffer.add_string b ",\"error\":";
  add_str b (Vekt_error.to_string error);
  Buffer.add_string b ",\"error_kind\":";
  add_str b (Vekt_error.kind_name error);
  let evts = Obs.Trace.events trace in
  let n = List.length evts in
  let tail_evts =
    if n <= tail then evts
    else List.filteri (fun i _ -> i >= n - tail) evts
  in
  Buffer.add_string b
    (Printf.sprintf ",\"ring\":{\"recorded\":%d,\"dropped\":%d,\"tail\":["
       (Obs.Trace.recorded trace) (Obs.Trace.dropped trace));
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      add_str b (Fmt.str "%a" Obs.Event.pp e))
    tail_evts;
  Buffer.add_string b "]}";
  let forest = Obs.Span.of_events evts in
  Buffer.add_string b ",\"open_spans\":[";
  List.iteri
    (fun i (s : Obs.Span.t) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"kind\":";
      add_str b (Obs.Event.span_kind_name s.Obs.Span.kind);
      Buffer.add_string b ",\"name\":";
      add_str b s.Obs.Span.name;
      Buffer.add_string b
        (Printf.sprintf ",\"worker\":%d,\"since_cycles\":" s.Obs.Span.worker);
      add_num b s.Obs.Span.t0;
      Buffer.add_char b '}')
    forest.Obs.Span.open_spans;
  Buffer.add_string b "],\"metrics\":";
  (match metrics with
  | None -> Buffer.add_string b "null"
  | Some m -> Buffer.add_string b (Obs.Metrics.to_json m));
  Buffer.add_char b '}';
  Buffer.contents b
