(** The dynamic execution manager (paper §3, §5.2).

    One execution manager runs per worker thread.  It owns a static
    partition of the kernel grid's CTAs and, for each CTA: the thread
    context pool, the CTA's shared-memory segment, a contiguous local-memory
    arena partitioned per thread, barrier bookkeeping, and the warp
    former/scheduler.

    The scheduling loop itself is a thin driver over three pluggable
    layers: a {!Scheduler.t} policy picks the next thread and packs the
    warp, the {!Translation_cache} supplies the width specialization
    (possibly tiered), and the disposition step routes each lane by the
    warp's resume status (ready / barrier queue / terminated).  Warps
    are formed within a single CTA (lanes share the CTA's shared segment
    and barrier); the policy must satisfy the contract documented in
    {!Scheduler}, in particular [Static_tie] code requires the static
    (consecutive-tid) policy. *)

module Ir = Vekt_ir.Ir
module Interp = Vekt_vm.Interp
module Machine = Vekt_vm.Machine
module Vectorize = Vekt_transform.Vectorize
module Obs = Vekt_obs
open Vekt_ptx

(** Modelled execution-manager overheads, in CPU cycles.  These feed the
    Figure 9 attribution; see DESIGN.md §2 for calibration notes. *)
type costs = {
  per_kernel_call : float;  (** cache query, argument setup, indirect call *)
  per_candidate_scan : float;  (** per context examined during warp formation *)
  per_lane_update : float;  (** status disposition per lane after a yield *)
  per_barrier_release : float;  (** per context moved out of the barrier queue *)
}

let default_costs =
  {
    per_kernel_call = 50.0;
    per_candidate_scan = 1.5;
    per_lane_update = 4.0;
    per_barrier_release = 3.0;
  }

(* First [k] members of a formed warp, when the available specialization
   width is narrower than the pack the policy found. *)
let rec take k = function
  | x :: rest when k > 0 -> x :: take (k - 1) rest
  | _ -> []

(** Execute one CTA to completion under scheduling policy [sched]
    (default: the policy matching the cache's vectorization mode).
    [fuel] bounds the number of subkernel calls (divergent runaway loops
    yield forever otherwise); exhausting it raises a structured
    {!Vekt_error.Fuel} naming the kernel and CTA.

    [watchdog] arms the per-warp livelock watchdog: a thread
    re-dispatched at the same entry point with no resume-point progress
    for that many consecutive calls raises {!Vekt_error.Deadlock}
    ([Livelock]).  Off by default — fuel alone bounds honest long
    loops.  [inject] arms deterministic fault injection ({!Fault}).

    [sink] receives warp-formation / dispatch / yield / barrier events
    timestamped on this worker's modelled-cycle clock; [profile]
    accumulates per-entry-point divergence statistics.  Both default to
    off, in which case the instrumented paths reduce to one branch and
    allocate nothing.

    [parallel] marks this CTA as running concurrently with sibling
    workers in other domains: cache queries then prefer the lock-free
    published-hit path (see {!Translation_cache.get_fallback}).

    [ckpt] arms the checkpoint policy: its [tick] hook runs at the top
    of every scheduler iteration — the safe point where no warp is in
    flight and every live value sits spilled in the local arena — and
    its [on_fault] hook runs just before a watchdog raises.  [restore]
    starts the CTA from a {!Checkpoint.cta_snap} instead of fresh
    thread contexts.  [record] logs every scheduling decision;
    [replay] substitutes a recorded schedule for the live policy and
    raises a structured {!Vekt_error.Checkpoint} if execution diverges
    from it. *)
let run_cta ?(costs = default_costs) ?(fuel = 5_000_000) ?watchdog
    ?(inject : Fault.t option) ?(parallel = false)
    ?(sink = Obs.Sink.noop) ?(profile : Obs.Divergence.t option)
    ?(attr : Obs.Attribution.t option) ?(worker = 0)
    ?sched ?(ckpt : Checkpoint.hooks option)
    ?(restore : Checkpoint.cta_snap option) ?(record : Replay.recorder option)
    ?(replay : Replay.t option) (cache : Translation_cache.t)
    ~(launch : Interp.launch_info) ~(ctaid : Launch.dim3) ~(global : Mem.t)
    ~(params : Mem.t) ~(consts : Mem.t) ~(stats : Stats.t) () : unit =
  let sched =
    match sched with
    | Some s ->
        Scheduler.validate ~mode:cache.Translation_cache.mode s;
        s
    | None ->
        Scheduler.of_kind
          (Scheduler.default_kind_for cache.Translation_cache.mode)
  in
  let block = launch.Interp.block in
  let n = Launch.count block in
  let bad_snapshot reason =
    raise
      (Vekt_error.Error
         (Vekt_error.Checkpoint { path = "(resume)"; what = "checkpoint"; reason }))
  in
  (* A restored CTA must have been snapshotted under this very shape:
     thread count and memory geometry are part of the safe-point
     invariant, so a mismatch is a damaged/foreign snapshot. *)
  (match restore with
  | None -> ()
  | Some s ->
      if Array.length s.Checkpoint.c_threads <> n then
        bad_snapshot
          (Fmt.str "snapshot has %d thread contexts, CTA has %d"
             (Array.length s.Checkpoint.c_threads) n);
      if Bytes.length s.Checkpoint.c_shared <> cache.Translation_cache.shared_bytes
      then bad_snapshot "shared-memory image size mismatch";
      if
        Bytes.length s.Checkpoint.c_local
        <> n * cache.Translation_cache.local_bytes
      then bad_snapshot "local-arena image size mismatch");
  let shared, local =
    match restore with
    | None ->
        ( Mem.create ~name:"shared" cache.Translation_cache.shared_bytes,
          Mem.create ~name:"local-arena" (n * cache.Translation_cache.local_bytes)
        )
    | Some s ->
        ( Mem.of_bytes ~name:"shared" (Bytes.copy s.Checkpoint.c_shared),
          Mem.of_bytes ~name:"local-arena" (Bytes.copy s.Checkpoint.c_local) )
  in
  let mem =
    { Interp.global; shared; local; params; consts }
  in
  let threads =
    Array.init n (fun i ->
        let tid = Launch.unlinear ~dims:block i in
        let resume_point, state =
          match restore with
          | None -> (0, Scheduler.Ready)
          | Some s ->
              ( s.Checkpoint.c_threads.(i).Checkpoint.t_resume,
                s.Checkpoint.c_threads.(i).Checkpoint.t_state )
        in
        {
          Scheduler.info =
            {
              Interp.tid;
              ctaid;
              local_base = i * cache.Translation_cache.local_bytes;
              resume_point;
            };
          linear = i;
          row = tid.Launch.y + (block.Launch.y * tid.Launch.z);
          state;
        })
  in
  let pool =
    {
      Scheduler.threads;
      n;
      cursor = (match restore with Some s -> s.Checkpoint.c_cursor | None -> 0);
    }
  in
  (* a restored CTA's threads were already counted when the snapshot's
     stats accumulated them; only a fresh CTA launches threads *)
  (match restore with
  | None -> stats.Stats.threads_launched <- stats.Stats.threads_launched + n
  | Some _ -> ());
  let remaining =
    ref (match restore with Some s -> s.Checkpoint.c_remaining | None -> n)
  in
  let calls_left =
    ref
      (match restore with
      | Some s -> max 0 (fuel - s.Checkpoint.c_calls_used)
      | None -> fuel)
  in
  let cta = (ctaid.Launch.x, ctaid.Launch.y, ctaid.Launch.z) in
  let cta_linear = Launch.linear ~dims:launch.Interp.grid ctaid in
  (* consecutive same-entry redispatches without resume-point progress,
     per thread; only maintained when the livelock watchdog is armed *)
  let stalls =
    match watchdog with
    | Some _ -> (
        match restore with
        | Some s when Array.length s.Checkpoint.c_stalls = n ->
            Array.copy s.Checkpoint.c_stalls
        | _ -> Array.make n 0)
    | None -> [||]
  in
  (* The safe-point serializer: called by the checkpoint hooks only at
     the top of a scheduler iteration, when no warp is executing and
     the exit handlers have spilled every live value to [local]. *)
  let save () : Checkpoint.cta_snap =
    {
      Checkpoint.c_ctaid = ctaid;
      c_shared = Bytes.copy (Mem.bytes shared);
      c_local = Bytes.copy (Mem.bytes local);
      c_threads =
        Array.map
          (fun (t : Scheduler.thr) ->
            {
              Checkpoint.t_resume = t.Scheduler.info.Interp.resume_point;
              t_state = t.Scheduler.state;
            })
          threads;
      c_cursor = pool.Scheduler.cursor;
      c_remaining = !remaining;
      c_calls_used = fuel - !calls_left;
      c_stalls = Array.copy stalls;
    }
  in
  let on_access =
    match inject with
    | Some inj -> Fault.mem_hook inj ~kernel:cache.Translation_cache.kernel_name
    | None -> None
  in
  (* Modelled-cycle clock for this worker: execution-manager overheads
     plus everything the interpreter has accounted so far.  Monotone
     across the CTAs this worker runs, so trace timestamps nest. *)
  let now () = stats.Stats.em_cycles +. Interp.total_cycles stats.Stats.counters in
  let fuel_error () =
    raise
      (Vekt_error.Error
         (Vekt_error.Fuel
            {
              kernel = cache.Translation_cache.kernel_name;
              cta;
              calls = fuel - !calls_left;
              fuel;
              cycle = now ();
            }))
  in
  (* Snapshot every non-exited thread for a deadlock diagnostic. *)
  let stuck_threads () =
    Array.to_list threads
    |> List.filter_map (fun (t : Scheduler.thr) ->
           if t.Scheduler.state = Scheduler.Done then None
           else
             Some
               {
                 Vekt_error.t_linear = t.Scheduler.linear;
                 t_state = Scheduler.tstate_name t.Scheduler.state;
                 t_entry = t.Scheduler.info.Interp.resume_point;
               })
  in
  let deadlock kind detail =
    (* watchdog fire: drop a diagnostic snapshot first, so the stuck
       state can be inspected (it is not a resume candidate — resuming
       a deterministic deadlock would only re-raise it) *)
    (match ckpt with
    | Some h -> h.Checkpoint.on_fault ~now:(now ()) ~save
    | None -> ());
    raise
      (Vekt_error.Error
         (Vekt_error.Deadlock
            {
              kernel = cache.Translation_cache.kernel_name;
              cta;
              cycle = now ();
              kind;
              detail;
              threads = stuck_threads ();
            }))
  in
  (* --- the three scheduler-step outcomes, shared by the live and
     replay paths.  In replay mode [expected]/[expect_ws] carry the
     recorded values to assert against; in record mode each outcome is
     appended to the schedule log. *)
  let do_release ~expected =
    (* No runnable thread: every live thread is parked at the barrier.
       Release them all (barriers synchronize live threads; threads
       that already exited don't count, same as the oracle). *)
    let released = ref 0 in
    Array.iter
      (fun (t : Scheduler.thr) ->
        if t.state = Scheduler.Blocked then begin
          t.state <- Scheduler.Ready;
          incr released
        end)
      threads;
    if !released = 0 then
      (* live threads remain but none is runnable and none is parked
         at the barrier: the policy starved them (distinct from the
         normal all-exited loop exit, where [remaining] hits 0) *)
      deadlock Vekt_error.Barrier_starvation
        (Fmt.str
           "scheduler %s found no runnable thread and the barrier queue is \
            empty with %d threads live"
           sched.Scheduler.name !remaining);
    (match (expected, replay) with
    | Some e, Some log when e <> !released ->
        Replay.diverged log ~cta:cta_linear
          (Fmt.str "barrier released %d threads, log recorded %d" !released e)
    | _ -> ());
    (match record with
    | Some r ->
        Replay.record r ~cta:cta_linear (Replay.Barrier { released = !released })
    | None -> ());
    stats.Stats.barrier_releases <- stats.Stats.barrier_releases + !released;
    stats.Stats.em_cycles <-
      stats.Stats.em_cycles +. (float_of_int !released *. costs.per_barrier_release);
    if Obs.Sink.enabled sink then
      Obs.Sink.emit sink
        (Obs.Event.Barrier_release { ts = now (); worker; released = !released })
  in
  let do_spurious_yield ~start =
    (* spurious yield: skip the dispatch entirely; the selected thread
       stays Ready and is revisited later.  The fuel decrement makes
       even [every=1] terminate. *)
    (match record with
    | Some r -> Replay.record r ~cta:cta_linear (Replay.Yield { start })
    | None -> ());
    pool.Scheduler.cursor <- (start + 1) mod n
  in
  let do_dispatch ~start ~members ~count ~scanned ~ws_req ~expect_ws =
    stats.Stats.em_cycles <-
      stats.Stats.em_cycles
      +. (float_of_int scanned *. costs.per_candidate_scan);
    let entry_id = threads.(start).Scheduler.info.Interp.resume_point in
    (* the policy already tracked the member count: no List.length
       here.  The cache query degrades through the fallback chain, so
       the width actually served can be narrower than the best fit. *)
    let entry, ws =
      Translation_cache.get_fallback cache ~params ~sink ~now:(now ())
        ~worker ~parallel ~ws:ws_req ()
    in
    (match (expect_ws, replay) with
    | Some e, Some log when e <> ws ->
        Replay.diverged log ~cta:cta_linear
          (Fmt.str "cache served width %d at entry %d, log recorded %d" ws
             entry_id e)
    | _ -> ());
    let members = if ws = count then members else take ws members in
    (match record with
    | Some r ->
        Replay.record r ~cta:cta_linear
          (Replay.Dispatch { start; entry_id; ws; scanned; members })
    | None -> ());
    if Obs.Sink.enabled sink then
      Obs.Sink.emit sink
        (Obs.Event.Warp_formed
           { ts = now (); worker; entry_id; size = ws; scanned });
    let lanes =
      Array.of_list (List.map (fun i -> threads.(i).Scheduler.info) members)
    in
    let warp = { Interp.lanes; entry_id; status = Ir.Status_exit } in
    Stats.record_warp stats ws;
    stats.Stats.em_cycles <- stats.Stats.em_cycles +. costs.per_kernel_call;
    let restores0 = stats.Stats.counters.Interp.restores in
    let spills0 = stats.Stats.counters.Interp.spills in
    let call_ts = if Obs.Sink.enabled sink then now () else 0.0 in
    Translation_cache.pin entry;
    Fun.protect
      ~finally:(fun () -> Translation_cache.unpin entry)
      (fun () ->
        try
          Interp.exec ?on_access ~timing:entry.Translation_cache.timing
            ~counters:stats.Stats.counters ?profile ?attr
            entry.Translation_cache.vfunc ~launch warp mem
        with
        | Interp.Out_of_fuel -> fuel_error ()
        | Vekt_error.Error (Vekt_error.Trap tr) ->
            (* the interpreter attached thread context but only knows
               the specialization's name (e.g. "k.w4"); report the
               source kernel, and the modelled cycle known only here *)
            raise
              (Vekt_error.Error
                 (Vekt_error.Trap
                    {
                      tr with
                      kernel = cache.Translation_cache.kernel_name;
                      cycle = Some (now ());
                    })));
    (match profile with
    | None -> ()
    | Some p ->
        Obs.Divergence.record_entry p ~entry_id ~ws
          ~restores:(stats.Stats.counters.Interp.restores - restores0)
          ~spills:(stats.Stats.counters.Interp.spills - spills0));
    if Obs.Sink.enabled sink then begin
      let ts = now () in
      Obs.Sink.emit sink
        (Obs.Event.Subkernel_call
           {
             ts = call_ts;
             dur = ts -. call_ts;
             worker;
             kernel = cache.Translation_cache.kernel_name;
             entry_id;
             ws;
           });
      let kind =
        match warp.Interp.status with
        | Ir.Status_exit -> Obs.Event.Yield_exit
        | Ir.Status_barrier -> Obs.Event.Yield_barrier
        | Ir.Status_branch -> Obs.Event.Yield_branch
      in
      Obs.Sink.emit sink
        (Obs.Event.Yield { ts; worker; entry_id; kind; lanes = ws })
    end;
    stats.Stats.em_cycles <-
      stats.Stats.em_cycles +. (float_of_int ws *. costs.per_lane_update);
    List.iter
      (fun i ->
        let t = threads.(i) in
        match warp.Interp.status with
        | Ir.Status_exit ->
            t.Scheduler.state <- Scheduler.Done;
            decr remaining
        | Ir.Status_barrier -> t.Scheduler.state <- Scheduler.Blocked
        | Ir.Status_branch -> t.Scheduler.state <- Scheduler.Ready)
      members;
    (match watchdog with
    | None -> ()
    | Some limit ->
        (* progress proxy: a thread yielded back Ready at the very
           entry point it was dispatched from made no resume-point
           progress; [limit] such dispatches in a row is a livelock *)
        List.iter
          (fun i ->
            let t = threads.(i) in
            if
              t.Scheduler.state = Scheduler.Ready
              && t.Scheduler.info.Interp.resume_point = entry_id
            then begin
              stalls.(i) <- stalls.(i) + 1;
              if stalls.(i) >= limit then
                deadlock Vekt_error.Livelock
                  (Fmt.str
                     "thread %d re-dispatched at entry %d with no progress \
                      for %d consecutive calls under scheduler %s"
                     i entry_id stalls.(i) sched.Scheduler.name)
            end
            else stalls.(i) <- 0)
          members);
    pool.Scheduler.cursor <- (start + 1) mod n
  in
  (* CTA span: brackets the whole scheduling loop.  Intentionally not
     exception-protected — a CTA killed mid-flight (fuel, deadlock,
     injected fault) leaves its span open, which is exactly what the
     crash bundle reports as "where was everyone?". *)
  let cta_span_name =
    Printf.sprintf "cta %d,%d,%d" ctaid.Launch.x ctaid.Launch.y ctaid.Launch.z
  in
  if Obs.Sink.enabled sink then
    Obs.Sink.emit sink
      (Obs.Event.Span_begin
         { ts = now (); wall_us = Clock.now_us (); worker;
           kind = Obs.Event.Sk_cta; name = cta_span_name });
  (match replay with
  | Some log ->
      (* Replay mode: the recorded schedule drives the loop; the live
         policy is bypassed entirely.  Each decision is validated
         against live state before it is applied, so a log recorded
         against different code or data diverges with a structured
         error instead of silently corrupting memory. *)
      while !remaining > 0 do
        (match ckpt with
        | Some h -> h.Checkpoint.tick ~now:(now ()) ~save
        | None -> ());
        match Replay.next log ~cta:cta_linear with
        | Replay.Barrier { released } -> do_release ~expected:(Some released)
        | Replay.Yield { start } ->
            if start < 0 || start >= n then
              Replay.diverged log ~cta:cta_linear
                (Fmt.str "yield start %d outside CTA of %d threads" start n);
            if !calls_left = 0 then fuel_error ();
            decr calls_left;
            ignore
              (match inject with
              | Some inj -> Fault.spurious_yield inj
              | None -> false);
            do_spurious_yield ~start
        | Replay.Dispatch { start; entry_id; ws; scanned; members } ->
            if start < 0 || start >= n then
              Replay.diverged log ~cta:cta_linear
                (Fmt.str "dispatch start %d outside CTA of %d threads" start n);
            List.iter
              (fun i ->
                if i < 0 || i >= n then
                  Replay.diverged log ~cta:cta_linear
                    (Fmt.str "member %d outside CTA of %d threads" i n);
                let t = threads.(i) in
                if t.Scheduler.state <> Scheduler.Ready then
                  Replay.diverged log ~cta:cta_linear
                    (Fmt.str "member %d not runnable at recorded dispatch" i);
                if t.Scheduler.info.Interp.resume_point <> entry_id then
                  Replay.diverged log ~cta:cta_linear
                    (Fmt.str
                       "member %d parked at entry %d, log recorded entry %d" i
                       t.Scheduler.info.Interp.resume_point entry_id))
              members;
            if !calls_left = 0 then fuel_error ();
            decr calls_left;
            (* consume the injector's dispatch counter in lockstep so a
               later transition out of replay stays deterministic *)
            ignore
              (match inject with
              | Some inj -> Fault.spurious_yield inj
              | None -> false);
            do_dispatch ~start ~members ~count:(List.length members) ~scanned
              ~ws_req:ws ~expect_ws:(Some ws)
      done;
      Replay.check_drained log ~cta:cta_linear
  | None ->
      while !remaining > 0 do
        (match ckpt with
        | Some h -> h.Checkpoint.tick ~now:(now ()) ~save
        | None -> ());
        match sched.Scheduler.select pool with
        | None -> do_release ~expected:None
        | Some start ->
            if !calls_left = 0 then fuel_error ();
            decr calls_left;
            if
              match inject with
              | Some inj -> Fault.spurious_yield inj
              | None -> false
            then do_spurious_yield ~start
            else begin
              let want = Translation_cache.max_width cache in
              let w = sched.Scheduler.form pool ~start ~want in
              do_dispatch ~start ~members:w.Scheduler.members
                ~count:w.Scheduler.count ~scanned:w.Scheduler.scanned
                ~ws_req:(Translation_cache.best_width cache w.Scheduler.count)
                ~expect_ws:None
            end
      done);
  if Obs.Sink.enabled sink then
    Obs.Sink.emit sink
      (Obs.Event.Span_end
         { ts = now (); wall_us = Clock.now_us (); worker;
           kind = Obs.Event.Sk_cta; name = cta_span_name })

(** Run a whole kernel launch: CTAs are statically partitioned round-robin
    over [workers] execution managers; each worker's statistics are merged
    into the returned aggregate, with wall cycles the maximum over
    workers. *)
let launch_kernel ?(costs = default_costs) ?fuel ?watchdog
    ?(inject : Fault.t option) ?(workers = 4)
    ?(sink = Obs.Sink.noop) ?(profile : Obs.Divergence.t option)
    ?(attr : Obs.Attribution.t option) ?sched
    (cache : Translation_cache.t) ~(grid : Launch.dim3) ~(block : Launch.dim3)
    ~(global : Mem.t) ~(params : Mem.t) ~(consts : Mem.t) : Stats.t =
  let ncta = Launch.count grid in
  let launch = { Interp.grid; block } in
  let aggregate = Stats.create () in
  let workers = max 1 (min workers ncta) in
  (* A policy incompatible with the vectorization mode would execute
     miscompiled warps; fail the launch instead. *)
  Option.iter
    (Scheduler.validate ~mode:cache.Translation_cache.mode)
    sched;
  (match profile with
  | Some p ->
      Obs.Divergence.set_entry_names p (Translation_cache.entry_ids cache)
  | None -> ());
  for w = 0 to workers - 1 do
    let wstats = Stats.create () in
    let c = ref w in
    while !c < ncta do
      let ctaid = Launch.unlinear ~dims:grid !c in
      run_cta ~costs ?fuel ?watchdog ?inject ~sink ?profile ?attr ~worker:w
        ?sched cache ~launch ~ctaid ~global ~params ~consts ~stats:wstats ();
      c := !c + workers
    done;
    Stats.merge_into ~into:aggregate wstats
  done;
  aggregate
