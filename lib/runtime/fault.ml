(** Deterministic fault injection (the test double for the
    fault-tolerance subsystem).

    Faults are described by declarative {!spec}s — parsed from
    [--inject] command-line strings or built programmatically — and
    armed per launch through {!Api.config}.  All decisions are
    deterministic: probabilistic specs draw from a seeded xorshift
    generator, counting specs ("the Nth memory access", "every Kth
    dispatch") use plain counters, so a given (module, config, seed)
    triple always injects the same faults at the same points.  With no
    specs armed the runtime never consults this module on the hot path,
    keeping modelled cycles bit-identical to an uninstrumented run. *)

open Vekt_ptx

(** One fault site.  [None] filters match anything. *)
type spec =
  | Compile_fail of {
      ws : int option;  (** only this warp width *)
      tier : int option;  (** only this compile tier *)
      kernel : string option;
      p : float;  (** injection probability; 1.0 = always *)
    }
      (** vectorizer/pipeline failure at specialization-build time;
          exercises the fallback chain and quarantine *)
  | Mem_trap of { nth : int; kernel : string option }
      (** out-of-band memory trap raised at the [nth] memory
          instruction executed under the interpreter *)
  | Spurious_yield of { every : int }
      (** every [every]th warp dispatch is skipped (the warp yields
          back to the manager without running); consumes fuel so even
          [every = 1] terminates *)

type config = { seed : int; specs : spec list }

let default_seed = 0x5eed

(* ---- spec parsing ("kind:k=v,k=v") ---- *)

let parse_field (k, v) acc =
  match acc with
  | Error _ as e -> e
  | Ok fields -> (
      match k with
      | "ws" | "tier" | "nth" | "every" -> (
          match int_of_string_opt v with
          | Some n when n >= 0 -> Ok ((k, `I n) :: fields)
          | _ -> Error (Fmt.str "field %s wants a non-negative integer, got %S" k v))
      | "p" -> (
          match float_of_string_opt v with
          | Some p when p >= 0.0 && p <= 1.0 -> Ok ((k, `F p) :: fields)
          | _ -> Error (Fmt.str "field p wants a probability in [0;1], got %S" v))
      | "kernel" -> Ok ((k, `S v) :: fields)
      | _ -> Error (Fmt.str "unknown field %S" k))

let find_i fields k = List.assoc_opt k fields |> Option.map (function `I n -> n | _ -> 0)
let find_s fields k =
  List.assoc_opt k fields |> Option.map (function `S s -> s | _ -> "")

(** Parse one [--inject] argument, e.g. ["compile-fail:ws=4,tier=1,p=0.5"],
    ["mem-trap:nth=100,kernel=saxpy"], ["yield:every=8"]. *)
let parse_spec s : (spec, string) result =
  let kind, body =
    match String.index_opt s ':' with
    | None -> (s, "")
    | Some i ->
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  let fields =
    if body = "" then Ok []
    else
      List.fold_left
        (fun acc f ->
          match String.index_opt f '=' with
          | None -> Error (Fmt.str "malformed field %S (expected key=value)" f)
          | Some i ->
              parse_field
                ( String.sub f 0 i,
                  String.sub f (i + 1) (String.length f - i - 1) )
                acc)
        (Ok [])
        (String.split_on_char ',' body)
  in
  match fields with
  | Error e -> Error (Fmt.str "bad fault spec %S: %s" s e)
  | Ok fields -> (
      match kind with
      | "compile-fail" ->
          let p =
            match List.assoc_opt "p" fields with Some (`F p) -> p | _ -> 1.0
          in
          Ok
            (Compile_fail
               {
                 ws = find_i fields "ws";
                 tier = find_i fields "tier";
                 kernel = find_s fields "kernel";
                 p;
               })
      | "mem-trap" ->
          Ok
            (Mem_trap
               {
                 nth = Option.value (find_i fields "nth") ~default:1;
                 kernel = find_s fields "kernel";
               })
      | "yield" ->
          Ok
            (Spurious_yield
               { every = max 1 (Option.value (find_i fields "every") ~default:8) })
      | _ ->
          Error
            (Fmt.str
               "bad fault spec %S: unknown kind %S (want compile-fail, \
                mem-trap or yield)"
               s kind))

(* ---- armed injector ---- *)

(* The counters are atomic because one injector is shared by every
   worker domain of a launch ({!Worker_pool}); plain mutable ints would
   lose updates under concurrent bumping.  [rng] stays plain mutable: it
   is only consulted from {!check_compile}, which the translation cache
   always calls under its own mutex. *)
type t = {
  config : config;
  mutable rng : int;  (** xorshift state; never 0 *)
  mem_seen : int Atomic.t;  (** memory instructions observed so far *)
  dispatches : int Atomic.t;  (** warp dispatches observed so far *)
  compile_fails : int Atomic.t;  (** injected specialization-build failures *)
  mem_traps : int Atomic.t;  (** injected memory traps *)
  yields : int Atomic.t;  (** injected spurious yields *)
}

let create (config : config) =
  let s = if config.seed = 0 then default_seed else config.seed in
  {
    config;
    rng = s;
    mem_seen = Atomic.make 0;
    dispatches = Atomic.make 0;
    compile_fails = Atomic.make 0;
    mem_traps = Atomic.make 0;
    yields = Atomic.make 0;
  }

(** Serializable injector state — the xorshift word plus every counter,
    in a fixed order (rng, mem_seen, dispatches, compile_fails,
    mem_traps, yields).  Checkpoints capture it so a cross-process
    resume continues the same deterministic fault schedule instead of
    replaying injections from scratch. *)
let export_state t : int array =
  [|
    t.rng;
    Atomic.get t.mem_seen;
    Atomic.get t.dispatches;
    Atomic.get t.compile_fails;
    Atomic.get t.mem_traps;
    Atomic.get t.yields;
  |]

let import_state t (s : int array) =
  if Array.length s <> 6 then invalid_arg "Fault.import_state: want 6 fields";
  t.rng <- (if s.(0) = 0 then default_seed else s.(0));
  Atomic.set t.mem_seen s.(1);
  Atomic.set t.dispatches s.(2);
  Atomic.set t.compile_fails s.(3);
  Atomic.set t.mem_traps s.(4);
  Atomic.set t.yields s.(5)

(* 62-bit xorshift, uniform draw in [0;1). *)
let draw t =
  let x = t.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = (x lxor (x lsl 17)) land max_int in
  t.rng <- (if x = 0 then default_seed else x);
  float_of_int x /. (float_of_int max_int +. 1.0)

let kernel_matches filter kernel =
  match filter with None -> true | Some k -> String.equal k kernel

let opt_matches filter v = match filter with None -> true | Some x -> x = v

(** Should the build of [kernel]'s [ws]-wide tier-[tier] specialization
    fail?  Returns the injected failure reason. *)
let check_compile t ~kernel ~ws ~tier : string option =
  List.find_map
    (function
      | Compile_fail c
        when kernel_matches c.kernel kernel && opt_matches c.ws ws
             && opt_matches c.tier tier ->
          if c.p >= 1.0 || draw t < c.p then begin
            Atomic.incr t.compile_fails;
            Some (Fmt.str "injected compile failure (ws=%d, tier=%d)" ws tier)
          end
          else None
      | _ -> None)
    t.config.specs

(** Per-access hook for {!Vekt_vm.Interp.exec}: raises {!Mem.Fault} at
    the configured [nth] memory instruction.  [None] when no mem-trap
    spec targets [kernel], so the un-injected interpreter path is
    untouched. *)
let mem_hook t ~kernel : (Ast.space -> addr:int -> width:int -> unit) option =
  List.find_map
    (function
      | Mem_trap m when kernel_matches m.kernel kernel -> Some m.nth
      | _ -> None)
    t.config.specs
  |> Option.map (fun nth sp ~addr ~width ->
         let seen = Atomic.fetch_and_add t.mem_seen 1 + 1 in
         if seen = nth then begin
           Atomic.incr t.mem_traps;
           raise
             (Mem.Fault
                {
                  Vekt_error.segment = Printer.space_str sp;
                  space = Printer.space_str sp;
                  addr;
                  width;
                  size = -1;
                  op = "injected trap";
                })
         end)

(** Should this warp dispatch be skipped (spurious yield)?  Counts every
    dispatch; fires on every [every]th one. *)
let spurious_yield t : bool =
  match
    List.find_map
      (function Spurious_yield y -> Some y.every | _ -> None)
      t.config.specs
  with
  | None -> false
  | Some every ->
      let d = Atomic.fetch_and_add t.dispatches 1 + 1 in
      if d mod every = 0 then begin
        Atomic.incr t.yields;
        true
      end
      else false

let metrics_into (t : t) (m : Vekt_obs.Metrics.t) =
  let module M = Vekt_obs.Metrics in
  M.counter m "fault.injected_compile_fails" := Atomic.get t.compile_fails;
  M.counter m "fault.injected_mem_traps" := Atomic.get t.mem_traps;
  M.counter m "fault.injected_yields" := Atomic.get t.yields
