(** The long-lived runtime engine: shared JIT state that outlives any
    single session (DESIGN.md §3.7).

    The paper's premise is that dynamic compilation pays for itself by
    amortizing translation across launches; a persistent engine extends
    the amortization across *clients*.  An engine owns the things that
    are expensive to warm up and safe to share:

    - the table of tiered {!Translation_cache}s, keyed by a fingerprint
      of (PTX source digest, kernel, machine, compilation config) so
      two sessions loading the same module with the same knobs hit the
      same hot specializations — the second tenant's launch of an
      already-hot kernel skips tier-0/tier-1 compilation entirely;
    - an engine-wide observability sink, teed under every session's
      own sink;
    - the default worker-pool width sessions inherit.

    Per-session state (global memory, the bump allocator, launch
    config) stays in {!Api.device} — a session is a thin facade over an
    engine, and the one-shot CLI path is just an engine with one
    session.  The translation caches themselves are domain-safe
    (mutex-guarded build path, lock-free published reads), so sessions
    on different domains share them without further ceremony; this
    module's lock only guards the cache *table* and the counters.

    Caches built with a fault injector armed are deliberately not
    shared: the injector's deterministic RNG schedule is per-module
    state, and leaking one tenant's injected faults into another's
    launches would be absurd.  {!Api} gives such modules private
    caches. *)

module Machine = Vekt_vm.Machine

type t = {
  machine : Machine.t;
  default_workers : int;  (** modelled worker partition sessions inherit *)
  sink : Vekt_obs.Sink.t;  (** engine-wide tap, teed under session sinks *)
  lock : Mutex.t;
  caches : (string, Translation_cache.t) Hashtbl.t;
  created_us : float;  (** monotonic creation time, for the uptime gauge *)
  mutable sessions : int;  (** devices ever attached to this engine *)
  mutable launches : int;  (** launches dispatched through this engine *)
  mutable cache_builds : int;  (** shared caches built (table misses) *)
  mutable cache_reuses : int;  (** lookups served from the shared table *)
}

let create ?(machine = Machine.sse4) ?workers ?(sink = Vekt_obs.Sink.noop) () :
    t =
  {
    machine;
    default_workers = Option.value workers ~default:machine.Machine.cores;
    sink;
    lock = Mutex.create ();
    caches = Hashtbl.create 16;
    created_us = Clock.now_us ();
    sessions = 0;
    launches = 0;
    cache_builds = 0;
    cache_reuses = 0;
  }

(** Wall microseconds this engine has been alive.  The daemon's stats
    scrape and restart-recovery log both report it: a small uptime after
    a crash is how an operator distinguishes "recovered launches" from
    "launches that never died". *)
let uptime_us t = Clock.elapsed_us t.created_us

let machine t = t.machine
let default_workers t = t.default_workers
let sink t = t.sink

let note_session t =
  Mutex.lock t.lock;
  t.sessions <- t.sessions + 1;
  Mutex.unlock t.lock

let note_launch t =
  Mutex.lock t.lock;
  t.launches <- t.launches + 1;
  Mutex.unlock t.lock

(** Get the shared cache under [key], building (and publishing) it with
    [build] on first request.  [build] runs under the table lock so two
    sessions racing on a cold key produce exactly one cache — cache
    construction is cheap (translation itself is lazy, driven by
    launches), so holding the lock across it is fine. *)
let find_or_build t ~key build : Translation_cache.t =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.caches key with
  | Some c ->
      t.cache_reuses <- t.cache_reuses + 1;
      Mutex.unlock t.lock;
      c
  | None -> (
      match build () with
      | c ->
          Hashtbl.replace t.caches key c;
          t.cache_builds <- t.cache_builds + 1;
          Mutex.unlock t.lock;
          c
      | exception e ->
          Mutex.unlock t.lock;
          raise e)

let cache_count t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.caches in
  Mutex.unlock t.lock;
  n

(** Engine-wide counters, for the daemon's [stats] scrape. *)
let metrics_into t (reg : Vekt_obs.Metrics.t) =
  let module M = Vekt_obs.Metrics in
  Mutex.lock t.lock;
  M.counter reg "engine.sessions" := t.sessions;
  M.counter reg "engine.launches" := t.launches;
  M.counter reg "engine.cache_builds" := t.cache_builds;
  M.counter reg "engine.cache_reuses" := t.cache_reuses;
  M.set (M.gauge reg "engine.caches") (float_of_int (Hashtbl.length t.caches));
  M.set (M.gauge reg "engine.uptime_us") (uptime_us t);
  Mutex.unlock t.lock
