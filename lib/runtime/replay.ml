(** Deterministic record/replay of warp-formation schedules
    (DESIGN.md §3.5).

    Under domain parallelism the warp-formation sequence depends on
    dynamic ready-queue order, cache publication races and injected
    spurious yields, which makes divergence/scheduling heisenbugs
    unreproducible.  Record mode logs every scheduler decision the
    execution manager takes — barrier releases, spurious yields, and
    dispatches with their start thread, entry id, served width, scan
    count and member set — keyed by the CTA's linear index.  A replay
    run feeds the log back in place of the live policy: the manager
    re-executes the exact schedule and {e asserts} at each step that the
    live state still matches the recorded decision (members ready at the
    recorded entry, cache serving the recorded width), raising a
    structured {!Vekt_error.Checkpoint} on any divergence.

    CTAs are keyed by linear index, not worker, so a log records the
    complete schedule regardless of how CTAs were physically
    interleaved; replaying with the same [workers] partition reproduces
    each worker's event stream exactly.

    The log is a line-oriented text file (one decision per line,
    [end]-terminated so truncation is detectable), deliberately
    greppable and diffable. *)

open Vekt_ptx

type decision =
  | Barrier of { released : int }
      (** no runnable thread: the barrier parked set was released *)
  | Yield of { start : int }
      (** injected spurious yield: the selected thread was skipped *)
  | Dispatch of {
      start : int;  (** selected thread (linear index in the CTA) *)
      entry_id : int;  (** entry point the warp was dispatched at *)
      ws : int;  (** specialization width actually served *)
      scanned : int;  (** contexts examined by warp formation *)
      members : int list;  (** member linear indices, post width-trim *)
    }

(* ---- record mode ---- *)

(** Per-launch decision recorder.  Each CTA's cell is written only by
    the worker that owns the CTA, so recording is safe under domain
    parallelism without locks. *)
type recorder = { r_ncta : int; cells : decision list ref array }

let recorder ~ncta : recorder =
  { r_ncta = ncta; cells = Array.init (max 1 ncta) (fun _ -> ref []) }

let record (r : recorder) ~cta (d : decision) =
  let cell = r.cells.(cta) in
  cell := d :: !cell

(* ---- replay mode ---- *)

type t = {
  path : string;  (** log file (or "(memory)") — names divergence errors *)
  kernel : string;
  grid : Launch.dim3;
  block : Launch.dim3;
  workers : int;  (** partition width the schedule was recorded under *)
  steps : decision array array;  (** per-CTA decision sequences *)
  pos : int array;  (** per-CTA replay cursor *)
}

let bad ~path reason =
  raise
    (Vekt_error.Error (Vekt_error.Checkpoint { path; what = "replay log"; reason }))

let total (t : t) = Array.fold_left (fun a s -> a + Array.length s) 0 t.steps

(** The live execution did something the log did not record (or
    vice-versa): structured rejection, never an assert. *)
let diverged (t : t) ~cta reason =
  bad ~path:t.path (Fmt.str "replay diverged at CTA %d: %s" cta reason)

(** Pop the next recorded decision for [cta]. *)
let next (t : t) ~cta : decision =
  if cta < 0 || cta >= Array.length t.steps then
    diverged t ~cta "CTA outside the recorded grid";
  let p = t.pos.(cta) in
  if p >= Array.length t.steps.(cta) then
    diverged t ~cta
      (Fmt.str "schedule exhausted after %d decisions but threads remain live" p);
  t.pos.(cta) <- p + 1;
  t.steps.(cta).(p)

(** A CTA finished: every recorded decision must have been consumed. *)
let check_drained (t : t) ~cta =
  if cta >= 0 && cta < Array.length t.steps then begin
    let left = Array.length t.steps.(cta) - t.pos.(cta) in
    if left > 0 then
      diverged t ~cta
        (Fmt.str "CTA completed with %d recorded decisions left unplayed" left)
  end

(* ---- text serialization ---- *)

let pp_members ppf = function
  | [] -> Fmt.pf ppf "-"
  | ms -> Fmt.pf ppf "%a" Fmt.(list ~sep:(any ",") int) ms

let pp_decision ppf (cta, d) =
  match d with
  | Barrier b -> Fmt.pf ppf "b %d %d" cta b.released
  | Yield y -> Fmt.pf ppf "y %d %d" cta y.start
  | Dispatch p ->
      Fmt.pf ppf "d %d %d %d %d %d %a" cta p.start p.entry_id p.scanned p.ws
        pp_members p.members

(** Finish a recording into an in-memory log (the form the tests use;
    {!save} is this plus a file). *)
let of_recorder ?(path = "(memory)") (r : recorder) ~kernel ~grid ~block
    ~workers : t =
  {
    path;
    kernel;
    grid;
    block;
    workers;
    steps = Array.map (fun cell -> Array.of_list (List.rev !cell)) r.cells;
    pos = Array.make (Array.length r.cells) 0;
  }

(** Write a recorded schedule to [path] ([end]-terminated text). *)
let save (r : recorder) ~path ~kernel ~(grid : Launch.dim3)
    ~(block : Launch.dim3) ~workers =
  Out_channel.with_open_bin path (fun oc ->
      let p fmt = Printf.fprintf oc fmt in
      p "vekt-replay 1\n";
      p "kernel %s\n" kernel;
      p "grid %d %d %d\n" grid.Launch.x grid.Launch.y grid.Launch.z;
      p "block %d %d %d\n" block.Launch.x block.Launch.y block.Launch.z;
      p "workers %d\n" workers;
      p "ncta %d\n" r.r_ncta;
      Array.iteri
        (fun cta cell ->
          List.iter
            (fun d -> p "%s\n" (Fmt.str "%a" pp_decision (cta, d)))
            (List.rev !cell))
        r.cells;
      p "end\n")

(* ---- parsing ---- *)

let parse_members ~path s =
  if s = "-" then []
  else
    String.split_on_char ',' s
    |> List.map (fun x ->
           match int_of_string_opt x with
           | Some n -> n
           | None -> bad ~path (Fmt.str "bad member index %S" x))

let parse_int ~path ~what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> bad ~path (Fmt.str "bad %s %S" what s)

(** Load and validate a schedule log written by {!save}; malformed or
    truncated logs raise a structured {!Vekt_error.Checkpoint}. *)
let load (path : string) : t =
  let lines =
    try In_channel.with_open_bin path In_channel.input_lines
    with Sys_error msg -> bad ~path msg
  in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  let int = parse_int ~path in
  let dim3 ~what = function
    | [ x; y; z ] ->
        { Launch.x = int ~what x; y = int ~what y; z = int ~what z }
    | _ -> bad ~path (Fmt.str "malformed %s line" what)
  in
  match lines with
  | "vekt-replay 1"
    :: kernel_line :: grid_line :: block_line :: workers_line :: ncta_line
    :: rest -> (
      let field name line =
        match String.split_on_char ' ' line with
        | key :: vals when key = name -> vals
        | _ -> bad ~path (Fmt.str "expected %s line, got %S" name line)
      in
      let kernel =
        match field "kernel" kernel_line with
        | [ k ] -> k
        | _ -> bad ~path "malformed kernel line"
      in
      let grid = dim3 ~what:"grid" (field "grid" grid_line) in
      let block = dim3 ~what:"block" (field "block" block_line) in
      let workers =
        match field "workers" workers_line with
        | [ w ] -> int ~what:"workers" w
        | _ -> bad ~path "malformed workers line"
      in
      let ncta =
        match field "ncta" ncta_line with
        | [ n ] -> int ~what:"ncta" n
        | _ -> bad ~path "malformed ncta line"
      in
      if ncta < 1 || ncta <> Launch.count grid then
        bad ~path (Fmt.str "ncta %d does not match the recorded grid" ncta);
      let cells = Array.init ncta (fun _ -> ref []) in
      let add cta d =
        if cta < 0 || cta >= ncta then
          bad ~path (Fmt.str "decision for CTA %d outside grid of %d" cta ncta);
        cells.(cta) := d :: !(cells.(cta))
      in
      let rec go = function
        | [] -> bad ~path "missing end marker (truncated log)"
        | [ "end" ] -> ()
        | line :: rest ->
            (match String.split_on_char ' ' line with
            | [ "b"; cta; released ] ->
                add
                  (int ~what:"cta" cta)
                  (Barrier { released = int ~what:"released" released })
            | [ "y"; cta; start ] ->
                add
                  (int ~what:"cta" cta)
                  (Yield { start = int ~what:"start" start })
            | [ "d"; cta; start; entry; scanned; ws; members ] ->
                add
                  (int ~what:"cta" cta)
                  (Dispatch
                     {
                       start = int ~what:"start" start;
                       entry_id = int ~what:"entry" entry;
                       scanned = int ~what:"scanned" scanned;
                       ws = int ~what:"ws" ws;
                       members = parse_members ~path members;
                     })
            | _ -> bad ~path (Fmt.str "malformed decision line %S" line));
            go rest
      in
      go rest;
      {
        path;
        kernel;
        grid;
        block;
        workers;
        steps = Array.map (fun cell -> Array.of_list (List.rev !cell)) cells;
        pos = Array.make ncta 0;
      })
  | _ -> bad ~path "missing or unsupported header"
