(** The dynamic translation cache (paper §5.1), tiered.

    Holds, per kernel, the scalar IR produced by the PTX→IR frontend and
    lazily built specializations per warp size.  Execution managers query
    it with a warp size; a miss triggers vectorization, optimization and
    timing analysis ("JIT compilation"), whose simulated cost is charged
    to compilation statistics rather than kernel cycles (the paper
    translates at kernel granularity, off the measured path).

    Compilation is policy-driven:

    - {b Eager} (the paper's behaviour, the default): the first query
      for a (warp size, argument digest) builds the fully optimized
      specialization.
    - {b Tiered}: the first query builds an {e unoptimized} tier-0
      specialization immediately (vectorize + a single DCE sweep, no
      pass pipeline — cheap, so the warp is never stalled behind the
      optimizer); a per-key hotness counter then promotes the
      specialization through the full pass pipeline once it has been
      requested [hot_threshold] times.  Promotion replaces the table
      entry; warps already executing the tier-0 code keep their
      reference.

    The specialization table can be bounded ([capacity]): before an
    insert would exceed the bound, the least-recently-used entry that is
    not currently pinned by an executing warp is evicted.  Hotness
    counters survive eviction, so a re-queried hot key recompiles
    straight to tier 1.

    {b Domain safety} (DESIGN.md §3.4).  One cache is shared by every
    execution-manager worker of a launch, which under
    {!Vekt_runtime.Worker_pool} means several OCaml domains.  All
    mutation — compiling, inserting, promoting, evicting, quarantining —
    happens under a single per-cache mutex, and after every mutation the
    table is {e published}: an immutable snapshot of the entry and
    quarantine tables is stored into [Atomic.t] cells.  Parallel hit
    queries ({!get_fallback} with [~parallel:true]) read only the
    published snapshot, so cache hits — the per-dispatch steady state —
    never take the lock and never serialize the workers.  Snapshot reads
    can race a concurrent publish only by being slightly stale, which
    costs at most a redundant trip through the locked slow path (where
    the table is double-checked).  Published parallel hits are counted
    in a lock-free atomic and folded into the hit statistics; they do
    not bump LRU stamps or tier-promotion hotness (tier-0 entries are
    deliberately never served from the snapshot, so promotion decisions
    still see every query that matters). *)

module Ir = Vekt_ir.Ir
module Verify = Vekt_ir.Verify
module Ptx_to_ir = Vekt_transform.Ptx_to_ir
module Plan = Vekt_transform.Plan
module Vectorize = Vekt_transform.Vectorize
module Dce = Vekt_transform.Dce
module Passes = Vekt_transform.Passes
module Machine = Vekt_vm.Machine
module Timing = Vekt_vm.Timing
open Vekt_ptx

module Obs = Vekt_obs

type entry = {
  vfunc : Ir.func;
  timing : Timing.t;
  vect : Vectorize.vectorized;
  static_instrs : int;  (** static instruction count after optimization *)
  compile_us : float;  (** measured wall time this specialization cost to build *)
  tier : int;  (** 0 = unoptimized fast build, 1 = full pass pipeline *)
  mutable last_use : int;  (** LRU stamp (cache query clock) *)
  in_use : int Atomic.t;
      (** pin count held by currently-executing warps (pinned/unpinned
          from any domain, hence atomic) *)
}

(** When (and whether) a specialization is promoted through the full
    pass pipeline. *)
type tiering =
  | Eager
  | Tiered of { hot_threshold : int }
      (** queries of one (ws, digest) key before full optimization;
          values ≤ 1 behave like {!Eager} *)

(** One quarantined specialization key.  The TTL counts successful
    launches (decremented by {!tick_quarantine}); the stamp is a
    {!Clock.now_us} monotonic reading taken at quarantine time, so an
    optional age bound expires entries without ever consulting the
    (jumpable) wall clock. *)
type quarantine_entry = {
  mutable q_ttl : int;  (** remaining successful launches to sit out *)
  q_added_us : float;  (** monotonic stamp at quarantine time *)
}

type t = {
  kernel_name : string;
  scalar : Ir.func;
  plan : Plan.t;
  shared_bytes : int;
  local_bytes : int;  (** per-thread local memory: declared + spill area *)
  mode : Vectorize.mode;
  affine : bool;  (** coalesce affine/uniform memory accesses (§4 future work) *)
  specialize_args : bool;
      (** specialize on concrete kernel-argument values (§5.1 future work) *)
  machine : Machine.t;
  optimize : bool;
  pipeline : Passes.pipeline;  (** pass pipeline for tier-1 builds *)
  tiering : tiering;
  capacity : int option;  (** max live specializations; None = unbounded *)
  widths : int list;  (** available specializations, descending *)
  specializations : (int * string, entry) Hashtbl.t;
      (** keyed by (warp size, parameter-block digest; "" = generic) *)
  hotness : (int * string, int) Hashtbl.t;
      (** per-key query counts; drive tier promotion, survive eviction *)
  pass_stats : (string, int) Hashtbl.t;
      (** cumulative per-pass change counts over all tier-1 builds *)
  (* ---- domain safety (DESIGN.md §3.4) ---- *)
  lock : Mutex.t;
      (** guards every mutation of the tables and counters below; hit
          queries from parallel workers bypass it via [published] *)
  published : ((int * string) * entry) list Atomic.t;
      (** immutable snapshot of [specializations], republished under
          [lock] after every mutation; read lock-free by parallel hits *)
  pub_quarantine : (int * string) list Atomic.t;
      (** immutable snapshot of the active quarantine keys *)
  par_hits : int Atomic.t;
      (** hits served lock-free from [published] (folded into
          {!hit_rate} and the metrics next to [hits]) *)
  mutable clock : int;  (** LRU stamp source, bumped per query *)
  mutable compile_count : int;
  mutable promotions : int;  (** tier-0 → tier-1 recompilations *)
  mutable evictions : int;
  mutable hits : int;  (** cache queries answered without compiling *)
  mutable misses : int;
  mutable compile_wall_us : float;  (** total wall time spent compiling *)
  mutable verify : bool;
  (* ---- fault tolerance (see DESIGN.md §3.3) ---- *)
  fault : Fault.t option;  (** armed injector, shared with the manager *)
  quarantine_ttl : int;
      (** successful launches a quarantined width sits out before retry *)
  quarantine_max_age_us : float option;
      (** optional age bound on quarantine entries, measured on the
          monotonic clock ({!Clock}): an entry older than this is
          expired regardless of its launch-count TTL.  Monotonic
          readings never jump, so expiry is immune to wall-clock
          steps/slews. *)
  quarantine : (int * string, quarantine_entry) Hashtbl.t;
      (** known-bad specialization keys -> remaining TTL + age stamp *)
  mutable fallbacks : int;  (** builds that failed and fell to a narrower width *)
  mutable quarantine_adds : int;
  mutable quarantine_skips : int;
  mutable quarantine_expiries : int;
}

let default_widths = [ 4; 2; 1 ]
let default_hot_threshold = 3
let default_quarantine_ttl = 3

(** Parse-time preparation of one kernel: frontend to scalar IR plus the
    divergence plan shared by all specializations. *)
let prepare ?(mode = Vectorize.Dynamic) ?(affine = false) ?(specialize_args = false)
    ?(machine = Machine.sse4) ?(widths = default_widths) ?(optimize = true)
    ?(pipeline = Passes.default_pipeline) ?(tiering = Eager) ?capacity
    ?(verify = false) ?fault ?(quarantine_ttl = default_quarantine_ttl)
    ?quarantine_max_age_us (m : Ast.modul) ~kernel : t =
  let widths = List.sort_uniq (fun a b -> compare b a) widths in
  if widths = [] || List.exists (fun w -> w < 1) widths then
    invalid_arg "Translation_cache.prepare: invalid widths";
  if not (List.mem 1 widths) then
    invalid_arg "Translation_cache.prepare: a scalar (width 1) specialization is required";
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Translation_cache.prepare: capacity must be >= 1"
  | _ -> ());
  let tr = Ptx_to_ir.frontend m ~kernel in
  let plan = Plan.compute tr.Ptx_to_ir.func ~local_decl_bytes:tr.Ptx_to_ir.local_decl_bytes in
  {
    kernel_name = kernel;
    scalar = tr.Ptx_to_ir.func;
    plan;
    shared_bytes = tr.Ptx_to_ir.shared_bytes;
    local_bytes = Plan.local_bytes plan ~local_decl_bytes:tr.Ptx_to_ir.local_decl_bytes;
    mode;
    affine;
    specialize_args;
    machine;
    optimize;
    pipeline;
    tiering;
    capacity;
    widths;
    specializations = Hashtbl.create 4;
    hotness = Hashtbl.create 4;
    pass_stats = Hashtbl.create 8;
    lock = Mutex.create ();
    published = Atomic.make [];
    pub_quarantine = Atomic.make [];
    par_hits = Atomic.make 0;
    clock = 0;
    compile_count = 0;
    promotions = 0;
    evictions = 0;
    hits = 0;
    misses = 0;
    compile_wall_us = 0.0;
    verify;
    fault;
    quarantine_ttl = max 1 quarantine_ttl;
    quarantine_max_age_us;
    quarantine = Hashtbl.create 4;
    fallbacks = 0;
    quarantine_adds = 0;
    quarantine_skips = 0;
    quarantine_expiries = 0;
  }

(* ---- pinning (entries held by currently-executing warps) ---- *)

let pin (e : entry) = Atomic.incr e.in_use
let unpin (e : entry) = ignore (Atomic.fetch_and_add e.in_use (-1))

(* ---- publication (lock must be held) ---- *)

(* Republish immutable snapshots of the specialization and quarantine
   tables for the lock-free parallel hit path.  Called after every
   mutation; the fold allocates a fresh list, so readers of the old
   snapshot are never disturbed. *)
(* Is a quarantine entry past its monotonic age bound (when one is
   configured)?  Aged-out entries are treated as expired everywhere and
   physically retired by the next {!tick_quarantine}. *)
let quarantine_aged (t : t) (q : quarantine_entry) =
  match t.quarantine_max_age_us with
  | None -> false
  | Some max_age -> Clock.now_us () -. q.q_added_us > max_age

let republish (t : t) =
  Atomic.set t.published
    (Hashtbl.fold (fun key e acc -> (key, e) :: acc) t.specializations []);
  Atomic.set t.pub_quarantine
    (Hashtbl.fold
       (fun key q acc ->
         if q.q_ttl > 0 && not (quarantine_aged t q) then key :: acc else acc)
       t.quarantine [])

(* Evict least-recently-used unpinned entries until an insert fits the
   capacity bound.  A pinned (currently-executing) entry is never a
   victim; if everything is pinned the table temporarily exceeds the
   bound rather than dropping running code. *)
let evict_for_insert (t : t) =
  match t.capacity with
  | None -> ()
  | Some cap ->
      let continue_ = ref (Hashtbl.length t.specializations >= cap) in
      while !continue_ do
        let victim =
          Hashtbl.fold
            (fun key (e : entry) acc ->
              if Atomic.get e.in_use > 0 then acc
              else
                match acc with
                | Some (_, stamp) when stamp <= e.last_use -> acc
                | _ -> Some (key, e.last_use))
            t.specializations None
        in
        (match victim with
        | Some (key, _) ->
            Hashtbl.remove t.specializations key;
            t.evictions <- t.evictions + 1
        | None -> continue_ := false);
        if Hashtbl.length t.specializations < cap then continue_ := false
      done

(* ---- compilation ---- *)

let compile_error (t : t) ~ws ~tier ~stage reason =
  Vekt_error.Error
    (Vekt_error.Compile
       {
         kernel = t.kernel_name;
         ws = Some ws;
         tier = Some tier;
         stage;
         line = None;
         reason;
       })

(* Tier 0 skips the pass pipeline entirely (one DCE sweep keeps the
   pack/unpack traffic bounded); tier 1 runs the configured pipeline and
   accumulates its per-pass stats.  With an enabled [sink], every
   individual pass execution is bracketed by Sk_pass span events —
   modelled time stands still ([ts = now]: compilation is off the
   measured path) while the wall clock ticks, so the span tree shows
   exactly where build wall time went. *)
let compile_build (t : t) ~sink ~now ~worker ~scalar ~ws ~tier : entry =
  let wall0 = Clock.now_us () in
  let vect = Vectorize.run ~mode:t.mode ~affine:t.affine ~plan:t.plan scalar ~ws in
  if t.optimize && tier > 0 then begin
    let observe =
      if Obs.Sink.enabled sink then
        Some
          (fun ~pass ~round run ->
            let name = Printf.sprintf "%s.r%d" pass round in
            Obs.Sink.emit sink
              (Obs.Event.Span_begin
                 { ts = now; wall_us = Clock.now_us (); worker;
                   kind = Obs.Event.Sk_pass; name });
            let changes = run () in
            Obs.Sink.emit sink
              (Obs.Event.Span_end
                 { ts = now; wall_us = Clock.now_us (); worker;
                   kind = Obs.Event.Sk_pass; name });
            changes)
      else None
    in
    let st = Passes.run ?observe ~pipeline:t.pipeline vect.Vectorize.func in
    List.iter
      (fun (name, c) ->
        Hashtbl.replace t.pass_stats name
          (Option.value (Hashtbl.find_opt t.pass_stats name) ~default:0 + c))
      st.Passes.per_pass
  end
  else ignore (Dce.run vect.Vectorize.func);
  if t.verify then Verify.check_exn vect.Vectorize.func;
  let timing = Timing.analyze t.machine vect.Vectorize.func in
  let compile_us = Clock.elapsed_us wall0 in
  t.compile_count <- t.compile_count + 1;
  t.compile_wall_us <- t.compile_wall_us +. compile_us;
  {
    vfunc = vect.Vectorize.func;
    timing;
    vect;
    static_instrs = Ir.size vect.Vectorize.func;
    compile_us;
    tier;
    last_use = t.clock;
    in_use = Atomic.make 0;
  }

(* Build one specialization, folding build-time failures — injected or
   genuine — into the structured {!Vekt_error.Compile} taxonomy so the
   fallback chain can react uniformly. *)
let compile_entry (t : t) ~sink ~now ~worker ~scalar ~ws ~tier : entry =
  (match t.fault with
  | Some inj -> (
      match Fault.check_compile inj ~kernel:t.kernel_name ~ws ~tier with
      | Some reason ->
          raise (compile_error t ~ws ~tier ~stage:Vekt_error.Inject reason)
      | None -> ())
  | None -> ());
  try compile_build t ~sink ~now ~worker ~scalar ~ws ~tier with
  | Vekt_error.Error _ as e -> raise e
  | Ptx_to_ir.Unsupported u ->
      raise (compile_error t ~ws ~tier ~stage:Vekt_error.Frontend u.construct)
  | Failure msg | Invalid_argument msg ->
      raise (compile_error t ~ws ~tier ~stage:Vekt_error.Vectorize msg)

let emit_compile (t : t) sink ~now ~worker ~ws (e : entry) =
  if Obs.Sink.enabled sink then begin
    Obs.Sink.emit sink
      (Obs.Event.Compile_begin
         { ts = now; worker; kernel = t.kernel_name; ws; tier = e.tier });
    Obs.Sink.emit sink
      (Obs.Event.Compile_end
         {
           ts = now +. e.compile_us;
           worker;
           kernel = t.kernel_name;
           ws;
           tier = e.tier;
           wall_us = e.compile_us;
           static_instrs = e.static_instrs;
         })
  end

(* The scalar function a specialization starts from: the shared frontend
   result, or a copy with concrete argument values baked in. *)
let scalar_for (t : t) params =
  match params with
  | None -> t.scalar
  | Some p ->
      let copy = Ir.copy_func t.scalar in
      ignore (Vekt_transform.Specialize.params copy ~params:p);
      copy

(** Get (or build) the specialization for exactly [ws] lanes.  With
    [params] (and the cache built with [specialize_args]), the scalar
    kernel is first specialized on the concrete argument values and the
    result is cached under the parameter block's digest.

    Under {!Tiered} compilation a miss builds an unoptimized tier-0
    entry, and the query that takes a key's hotness to the threshold
    promotes it through the full pipeline (the query itself is still a
    hit: it is answered from cache, the recompile is the cache's own
    policy).

    [sink] receives cache hit/miss and compile begin/end events; [now]
    is the caller's modelled-cycle clock at query time (events from
    different subsystems share one timeline per worker). *)
let get_locked (t : t) ?params ?(sink = Obs.Sink.noop) ?(now = 0.0)
    ?(worker = 0) ~ws () : entry =
  let params = if t.specialize_args then params else None in
  let key =
    ( ws,
      match params with
      | None -> ""
      | Some p -> Digest.to_hex (Digest.bytes (Mem.bytes p)) )
  in
  t.clock <- t.clock + 1;
  let queries = Option.value (Hashtbl.find_opt t.hotness key) ~default:0 + 1 in
  Hashtbl.replace t.hotness key queries;
  let hot_threshold =
    match t.tiering with Eager -> 1 | Tiered { hot_threshold } -> hot_threshold
  in
  match Hashtbl.find_opt t.specializations key with
  | Some e ->
      t.hits <- t.hits + 1;
      e.last_use <- t.clock;
      if Obs.Sink.enabled sink then
        Obs.Sink.emit sink
          (Obs.Event.Cache_hit { ts = now; worker; kernel = t.kernel_name; ws });
      if e.tier = 0 && t.optimize && queries >= hot_threshold then begin
        (* hot: promote through the full pipeline.  A failed promotion
           (injected or genuine) keeps serving the working tier-0 code
           rather than surfacing an error for a cache-internal policy. *)
        match
          compile_entry t ~sink ~now ~worker ~scalar:(scalar_for t params) ~ws
            ~tier:1
        with
        | e' ->
            t.promotions <- t.promotions + 1;
            Hashtbl.replace t.specializations key e';
            emit_compile t sink ~now ~worker ~ws e';
            e'
        | exception Vekt_error.Error (Vekt_error.Compile _) -> e
      end
      else e
  | None ->
      if not (List.mem ws t.widths) then
        invalid_arg (Fmt.str "no %d-wide specialization of %s" ws t.kernel_name);
      t.misses <- t.misses + 1;
      if Obs.Sink.enabled sink then
        Obs.Sink.emit sink
          (Obs.Event.Cache_miss { ts = now; worker; kernel = t.kernel_name; ws });
      let tier =
        if t.optimize && queries < hot_threshold then 0 else 1
      in
      let tier = if not t.optimize then 1 else tier in
      let e =
        compile_entry t ~sink ~now ~worker ~scalar:(scalar_for t params) ~ws
          ~tier
      in
      evict_for_insert t;
      Hashtbl.replace t.specializations key e;
      emit_compile t sink ~now ~worker ~ws e;
      e

(** Locked wrapper around {!get_locked}: every mutation happens under
    the cache mutex and the snapshot is republished on the way out (even
    when the build raises — hotness/miss counters moved). *)
let get (t : t) ?params ?(sink = Obs.Sink.noop) ?(now = 0.0) ?(worker = 0) ~ws
    () : entry =
  Mutex.protect t.lock (fun () ->
      Fun.protect
        ~finally:(fun () -> republish t)
        (fun () -> get_locked t ?params ~sink ~now ~worker ~ws ()))

(* ---- fallback chain + quarantine (DESIGN.md §3.3) ---- *)

let digest_of (t : t) params =
  match if t.specialize_args then params else None with
  | None -> ""
  | Some p -> Digest.to_hex (Digest.bytes (Mem.bytes p))

let quarantined (t : t) key =
  match Hashtbl.find_opt t.quarantine key with
  | Some q when q.q_ttl > 0 && not (quarantine_aged t q) -> true
  | _ -> false

let emit_quarantine (t : t) sink ~now ~worker ~ws action =
  if Obs.Sink.enabled sink then
    Obs.Sink.emit sink
      (Obs.Event.Quarantine
         { ts = now; worker; kernel = t.kernel_name; ws; action })

(* Lock-free hit path for parallel workers: serve the first
   non-quarantined candidate width straight from the published snapshot,
   but only if that width is already resident at tier 1 — anything else
   (absent, or tier 0 whose hotness must keep accruing toward promotion)
   falls through to the locked slow path.  Snapshots may be stale; a
   stale miss just costs the slow-path trip, and a stale quarantine view
   merely delays a retry by one dispatch. *)
let published_hit (t : t) ~digest ~sink ~now ~worker candidates =
  let quar = Atomic.get t.pub_quarantine in
  let pub = Atomic.get t.published in
  let rec scan = function
    | [] -> None
    | w :: rest ->
        if List.mem (w, digest) quar then scan rest
        else (
          match List.assoc_opt (w, digest) pub with
          | Some (e : entry) when e.tier >= 1 ->
              Atomic.incr t.par_hits;
              if Obs.Sink.enabled sink then
                Obs.Sink.emit sink
                  (Obs.Event.Cache_hit
                     { ts = now; worker; kernel = t.kernel_name; ws = w });
              Some (e, w)
          | _ -> None)
  in
  scan candidates

(** Get a specialization for at most [ws] lanes, degrading gracefully:
    a width whose build fails (injected or genuine) is quarantined and
    the next narrower available width is tried, down to the scalar
    build.  Quarantined widths are skipped outright on later queries
    until {!tick_quarantine} expires them.  Returns the entry and the
    width actually served; raises the scalar build's
    {!Vekt_error.Compile} when every candidate width is failed or
    quarantined — the caller's last resort is the reference emulator.

    With [~parallel:true] (workers running in separate domains) a hit on
    an already-published tier-1 specialization is served lock-free from
    the snapshot; every other outcome takes the cache mutex. *)
let get_fallback (t : t) ?params ?(sink = Obs.Sink.noop) ?(now = 0.0)
    ?(worker = 0) ?(parallel = false) ~ws () : entry * int =
  let digest = digest_of t params in
  let candidates = List.filter (fun w -> w <= ws) t.widths in
  if candidates = [] then
    invalid_arg (Fmt.str "no specialization of %s fits width %d" t.kernel_name ws);
  let fast =
    if parallel then published_hit t ~digest ~sink ~now ~worker candidates
    else None
  in
  match fast with
  | Some hit -> hit
  | None ->
      let emit_fallback ~from_ws ~to_ws reason =
        if Obs.Sink.enabled sink then
          Obs.Sink.emit sink
            (Obs.Event.Compile_fallback
               { ts = now; worker; kernel = t.kernel_name; from_ws; to_ws; reason })
      in
      let rec try_widths last_err = function
        | [] -> (
            match last_err with
            | Some e -> raise (Vekt_error.Error e)
            | None ->
                (* every candidate was quarantined before this launch *)
                raise
                  (compile_error t ~ws ~tier:(-1) ~stage:Vekt_error.Vectorize
                     "all specialization widths quarantined"))
        | w :: rest -> (
            let next_ws = match rest with w' :: _ -> w' | [] -> 0 in
            if quarantined t (w, digest) then begin
              t.quarantine_skips <- t.quarantine_skips + 1;
              emit_quarantine t sink ~now ~worker ~ws:w Obs.Event.Q_skipped;
              try_widths last_err rest
            end
            else
              match get_locked t ?params ~sink ~now ~worker ~ws:w () with
              | e -> (e, w)
              | exception Vekt_error.Error (Vekt_error.Compile _ as err) ->
                  Hashtbl.replace t.quarantine (w, digest)
                    { q_ttl = t.quarantine_ttl; q_added_us = Clock.now_us () };
                  t.quarantine_adds <- t.quarantine_adds + 1;
                  t.fallbacks <- t.fallbacks + 1;
                  emit_fallback ~from_ws:w ~to_ws:next_ws (Vekt_error.to_string err);
                  emit_quarantine t sink ~now ~worker ~ws:w Obs.Event.Q_added;
                  try_widths (Some err) rest)
      in
      (* the slow path (miss / fallback chain / tier promotion) gets a
         cache_lookup span; the lock-free fast path above is too cheap
         to be worth a begin/end pair per dispatch.  Closed via
         Fun.protect so a raising chain (all widths failed) still leaves
         the tree balanced — the raise itself is the signal there. *)
      let span_name = Printf.sprintf "lookup %s.w%d" t.kernel_name ws in
      if Obs.Sink.enabled sink then
        Obs.Sink.emit sink
          (Obs.Event.Span_begin
             { ts = now; wall_us = Clock.now_us (); worker;
               kind = Obs.Event.Sk_cache_lookup; name = span_name });
      Fun.protect
        ~finally:(fun () ->
          if Obs.Sink.enabled sink then
            Obs.Sink.emit sink
              (Obs.Event.Span_end
                 { ts = now; wall_us = Clock.now_us (); worker;
                   kind = Obs.Event.Sk_cache_lookup; name = span_name }))
        (fun () ->
          Mutex.protect t.lock (fun () ->
              Fun.protect
                ~finally:(fun () -> republish t)
                (fun () -> try_widths None candidates)))

(** One successful launch elapsed: age every quarantine entry, retiring
    those whose TTL reaches zero — or whose monotonic age exceeds the
    configured bound — so the failed width gets re-tried. *)
let tick_quarantine (t : t) ?(sink = Obs.Sink.noop) ?(now = 0.0) ?(worker = 0)
    () =
  Mutex.protect t.lock (fun () ->
      let dead q = q.q_ttl <= 1 || quarantine_aged t q in
      let expired =
        Hashtbl.fold
          (fun key q acc -> if dead q then key :: acc else acc)
          t.quarantine []
      in
      Hashtbl.filter_map_inplace
        (fun _ q ->
          if dead q then None
          else begin
            q.q_ttl <- q.q_ttl - 1;
            Some q
          end)
        t.quarantine;
      List.iter
        (fun (w, _) ->
          t.quarantine_expiries <- t.quarantine_expiries + 1;
          emit_quarantine t sink ~now ~worker ~ws:w Obs.Event.Q_expired)
        expired;
      republish t)

(* ---- checkpoint metadata (DESIGN.md §3.5) ---- *)

(** Snapshot the cache's policy metadata for a checkpoint: per-key
    hotness counters and live quarantine TTLs, each as sorted
    [(ws, digest, value)] triples so serialization is canonical.
    Compiled entries themselves are not captured — code rebuilds on
    demand, and the restored hotness makes each key rebuild at the tier
    it had reached, so a resumed launch pays no extra tier-0 warmup and
    makes the same promotion decisions as the uninterrupted run. *)
let export_meta (t : t) : (int * string * int) list * (int * string * int) list
    =
  Mutex.protect t.lock (fun () ->
      let hot =
        Hashtbl.fold (fun (w, d) q acc -> (w, d, q) :: acc) t.hotness []
      in
      let quar =
        Hashtbl.fold
          (fun (w, d) q acc ->
            if q.q_ttl > 0 && not (quarantine_aged t q) then
              (w, d, q.q_ttl) :: acc
            else acc)
          t.quarantine []
      in
      (List.sort compare hot, List.sort compare quar))

(** Restore {!export_meta} state.  The specialization table is cleared
    (nothing is pinned at a checkpoint's safe point): leaving entries
    compiled under post-snapshot hotness would let a resumed launch see
    tiers the uninterrupted run hadn't reached yet.  Quarantine age
    stamps restart at the current monotonic reading — monotonic epochs
    don't survive a process boundary. *)
let restore_meta (t : t) ~(hotness : (int * string * int) list)
    ~(quarantine : (int * string * int) list) =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.specializations;
      Hashtbl.reset t.hotness;
      List.iter (fun (w, d, q) -> Hashtbl.replace t.hotness (w, d) q) hotness;
      Hashtbl.reset t.quarantine;
      let now = Clock.now_us () in
      List.iter
        (fun (w, d, ttl) ->
          Hashtbl.replace t.quarantine (w, d) { q_ttl = ttl; q_added_us = now })
        quarantine;
      republish t)

(** Largest available width not exceeding [n]. *)
let best_width (t : t) n = List.find (fun w -> w <= n) t.widths

let max_width (t : t) = List.hd t.widths

(** Entry IDs shared by all specializations of this kernel. *)
let entry_ids (t : t) = t.plan.Plan.entry_ids

(** Hit rate of the cache so far, in [0;1] ([0.0] before any query).
    Counts both locked hits and lock-free published hits. *)
let hit_rate (t : t) =
  let hits = t.hits + Atomic.get t.par_hits in
  let total = hits + t.misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

(** Snapshot JIT-side state (hit/miss rate, tier traffic, per-pass
    optimization stats, per-specialization compile cost and size) into a
    metrics registry. *)
let metrics_into (t : t) (m : Obs.Metrics.t) =
  let module M = Obs.Metrics in
  M.counter m "jit.compiles" := t.compile_count;
  M.counter m "jit.cache_hits" := t.hits + Atomic.get t.par_hits;
  M.counter m "jit.cache_hits_lockfree" := Atomic.get t.par_hits;
  M.counter m "jit.cache_misses" := t.misses;
  M.counter m "jit.promotions" := t.promotions;
  M.counter m "jit.evictions" := t.evictions;
  M.set (M.gauge m "jit.hit_rate") (hit_rate t);
  M.set (M.gauge m "jit.compile_wall_us") t.compile_wall_us;
  M.counter m "fallback.compile_failures" := t.fallbacks;
  M.counter m "fallback.quarantine_adds" := t.quarantine_adds;
  M.counter m "fallback.quarantine_skips" := t.quarantine_skips;
  M.counter m "fallback.quarantine_expiries" := t.quarantine_expiries;
  M.counter m "fallback.quarantine_active" := Hashtbl.length t.quarantine;
  List.iter
    (fun name ->
      M.counter m (Fmt.str "opt.%s.changes" name)
      := Option.value (Hashtbl.find_opt t.pass_stats name) ~default:0)
    (Passes.pass_names ());
  Hashtbl.iter
    (fun (ws, digest) (e : entry) ->
      let key =
        if digest = "" then Fmt.str "jit.w%d" ws
        else Fmt.str "jit.w%d.%s" ws (String.sub digest 0 8)
      in
      M.set (M.gauge m (key ^ ".compile_us")) e.compile_us;
      M.counter m (key ^ ".static_instrs") := e.static_instrs;
      M.counter m (key ^ ".tier") := e.tier)
    t.specializations
