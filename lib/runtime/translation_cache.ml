(** The dynamic translation cache (paper §5.1).

    Holds, per kernel, the scalar IR produced by the PTX→IR frontend and
    lazily built specializations per warp size.  Execution managers query
    it with a warp size; the first query for a size triggers vectorization,
    optimization and timing analysis ("JIT compilation"), whose simulated
    cost is charged to compilation statistics rather than kernel cycles
    (the paper translates at kernel granularity, off the measured path). *)

module Ir = Vekt_ir.Ir
module Verify = Vekt_ir.Verify
module Ptx_to_ir = Vekt_transform.Ptx_to_ir
module Plan = Vekt_transform.Plan
module Vectorize = Vekt_transform.Vectorize
module Dce = Vekt_transform.Dce
module Passes = Vekt_transform.Passes
module Machine = Vekt_vm.Machine
module Timing = Vekt_vm.Timing
open Vekt_ptx

module Obs = Vekt_obs

type entry = {
  vfunc : Ir.func;
  timing : Timing.t;
  vect : Vectorize.vectorized;
  static_instrs : int;  (** static instruction count after optimization *)
  compile_us : float;  (** measured wall time this specialization cost to build *)
}

type t = {
  kernel_name : string;
  scalar : Ir.func;
  plan : Plan.t;
  shared_bytes : int;
  local_bytes : int;  (** per-thread local memory: declared + spill area *)
  mode : Vectorize.mode;
  affine : bool;  (** coalesce affine/uniform memory accesses (§4 future work) *)
  specialize_args : bool;
      (** specialize on concrete kernel-argument values (§5.1 future work) *)
  machine : Machine.t;
  optimize : bool;
  widths : int list;  (** available specializations, descending *)
  specializations : (int * string, entry) Hashtbl.t;
      (** keyed by (warp size, parameter-block digest; "" = generic) *)
  mutable compile_count : int;
  mutable hits : int;  (** cache queries answered without compiling *)
  mutable misses : int;
  mutable compile_wall_us : float;  (** total wall time spent compiling *)
  mutable verify : bool;
}

let default_widths = [ 4; 2; 1 ]

(** Parse-time preparation of one kernel: frontend to scalar IR plus the
    divergence plan shared by all specializations. *)
let prepare ?(mode = Vectorize.Dynamic) ?(affine = false) ?(specialize_args = false)
    ?(machine = Machine.sse4) ?(widths = default_widths) ?(optimize = true)
    ?(verify = false) (m : Ast.modul) ~kernel : t =
  let widths = List.sort_uniq (fun a b -> compare b a) widths in
  if widths = [] || List.exists (fun w -> w < 1) widths then
    invalid_arg "Translation_cache.prepare: invalid widths";
  if not (List.mem 1 widths) then
    invalid_arg "Translation_cache.prepare: a scalar (width 1) specialization is required";
  let tr = Ptx_to_ir.frontend m ~kernel in
  let plan = Plan.compute tr.Ptx_to_ir.func ~local_decl_bytes:tr.Ptx_to_ir.local_decl_bytes in
  {
    kernel_name = kernel;
    scalar = tr.Ptx_to_ir.func;
    plan;
    shared_bytes = tr.Ptx_to_ir.shared_bytes;
    local_bytes = Plan.local_bytes plan ~local_decl_bytes:tr.Ptx_to_ir.local_decl_bytes;
    mode;
    affine;
    specialize_args;
    machine;
    optimize;
    widths;
    specializations = Hashtbl.create 4;
    compile_count = 0;
    hits = 0;
    misses = 0;
    compile_wall_us = 0.0;
    verify;
  }

(** Get (or build) the specialization for exactly [ws] lanes.  With
    [params] (and the cache built with [specialize_args]), the scalar
    kernel is first specialized on the concrete argument values and the
    result is cached under the parameter block's digest.

    [sink] receives cache hit/miss and compile begin/end events; [now]
    is the caller's modelled-cycle clock at query time (events from
    different subsystems share one timeline per worker). *)
let get (t : t) ?params ?(sink = Obs.Sink.noop) ?(now = 0.0) ?(worker = 0) ~ws
    () : entry =
  let params = if t.specialize_args then params else None in
  let key =
    ( ws,
      match params with
      | None -> ""
      | Some p -> Digest.to_hex (Digest.bytes (Mem.bytes p)) )
  in
  match Hashtbl.find_opt t.specializations key with
  | Some e ->
      t.hits <- t.hits + 1;
      if Obs.Sink.enabled sink then
        Obs.Sink.emit sink
          (Obs.Event.Cache_hit { ts = now; worker; kernel = t.kernel_name; ws });
      e
  | None ->
      if not (List.mem ws t.widths) then
        invalid_arg (Fmt.str "no %d-wide specialization of %s" ws t.kernel_name);
      t.misses <- t.misses + 1;
      t.compile_count <- t.compile_count + 1;
      if Obs.Sink.enabled sink then begin
        Obs.Sink.emit sink
          (Obs.Event.Cache_miss { ts = now; worker; kernel = t.kernel_name; ws });
        Obs.Sink.emit sink
          (Obs.Event.Compile_begin
             { ts = now; worker; kernel = t.kernel_name; ws })
      end;
      let wall0 = Sys.time () in
      let scalar =
        match params with
        | None -> t.scalar
        | Some p ->
            let copy = Ir.copy_func t.scalar in
            ignore (Vekt_transform.Specialize.params copy ~params:p);
            copy
      in
      let vect = Vectorize.run ~mode:t.mode ~affine:t.affine ~plan:t.plan scalar ~ws in
      if t.optimize then ignore (Passes.optimize vect.Vectorize.func)
      else ignore (Dce.run vect.Vectorize.func);
      if t.verify then Verify.check_exn vect.Vectorize.func;
      let timing = Timing.analyze t.machine vect.Vectorize.func in
      let compile_us = (Sys.time () -. wall0) *. 1e6 in
      t.compile_wall_us <- t.compile_wall_us +. compile_us;
      let e =
        {
          vfunc = vect.Vectorize.func;
          timing;
          vect;
          static_instrs = Ir.size vect.Vectorize.func;
          compile_us;
        }
      in
      Hashtbl.replace t.specializations key e;
      if Obs.Sink.enabled sink then
        Obs.Sink.emit sink
          (Obs.Event.Compile_end
             {
               ts = now +. compile_us;
               worker;
               kernel = t.kernel_name;
               ws;
               wall_us = compile_us;
               static_instrs = e.static_instrs;
             });
      e

(** Largest available width not exceeding [n]. *)
let best_width (t : t) n = List.find (fun w -> w <= n) t.widths

let max_width (t : t) = List.hd t.widths

(** Entry IDs shared by all specializations of this kernel. *)
let entry_ids (t : t) = t.plan.Plan.entry_ids

(** Hit rate of the cache so far, in [0;1] ([0.0] before any query). *)
let hit_rate (t : t) =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

(** Snapshot JIT-side state (hit/miss rate, per-specialization compile
    cost and size) into a metrics registry. *)
let metrics_into (t : t) (m : Obs.Metrics.t) =
  let module M = Obs.Metrics in
  M.counter m "jit.compiles" := t.compile_count;
  M.counter m "jit.cache_hits" := t.hits;
  M.counter m "jit.cache_misses" := t.misses;
  M.set (M.gauge m "jit.hit_rate") (hit_rate t);
  M.set (M.gauge m "jit.compile_wall_us") t.compile_wall_us;
  Hashtbl.iter
    (fun (ws, digest) (e : entry) ->
      let key =
        if digest = "" then Fmt.str "jit.w%d" ws
        else Fmt.str "jit.w%d.%s" ws (String.sub digest 0 8)
      in
      M.set (M.gauge m (key ^ ".compile_us")) e.compile_us;
      M.counter m (key ^ ".static_instrs") := e.static_instrs)
    t.specializations
