(** The dynamic translation cache (paper §5.1).

    Holds, per kernel, the scalar IR produced by the PTX→IR frontend and
    lazily built specializations per warp size.  Execution managers query
    it with a warp size; the first query for a size triggers vectorization,
    optimization and timing analysis ("JIT compilation"), whose simulated
    cost is charged to compilation statistics rather than kernel cycles
    (the paper translates at kernel granularity, off the measured path). *)

module Ir = Vekt_ir.Ir
module Verify = Vekt_ir.Verify
module Ptx_to_ir = Vekt_transform.Ptx_to_ir
module Plan = Vekt_transform.Plan
module Vectorize = Vekt_transform.Vectorize
module Dce = Vekt_transform.Dce
module Passes = Vekt_transform.Passes
module Machine = Vekt_vm.Machine
module Timing = Vekt_vm.Timing
open Vekt_ptx

type entry = {
  vfunc : Ir.func;
  timing : Timing.t;
  vect : Vectorize.vectorized;
  static_instrs : int;  (** static instruction count after optimization *)
}

type t = {
  kernel_name : string;
  scalar : Ir.func;
  plan : Plan.t;
  shared_bytes : int;
  local_bytes : int;  (** per-thread local memory: declared + spill area *)
  mode : Vectorize.mode;
  affine : bool;  (** coalesce affine/uniform memory accesses (§4 future work) *)
  specialize_args : bool;
      (** specialize on concrete kernel-argument values (§5.1 future work) *)
  machine : Machine.t;
  optimize : bool;
  widths : int list;  (** available specializations, descending *)
  specializations : (int * string, entry) Hashtbl.t;
      (** keyed by (warp size, parameter-block digest; "" = generic) *)
  mutable compile_count : int;
  mutable verify : bool;
}

let default_widths = [ 4; 2; 1 ]

(** Parse-time preparation of one kernel: frontend to scalar IR plus the
    divergence plan shared by all specializations. *)
let prepare ?(mode = Vectorize.Dynamic) ?(affine = false) ?(specialize_args = false)
    ?(machine = Machine.sse4) ?(widths = default_widths) ?(optimize = true)
    ?(verify = false) (m : Ast.modul) ~kernel : t =
  let widths = List.sort_uniq (fun a b -> compare b a) widths in
  if widths = [] || List.exists (fun w -> w < 1) widths then
    invalid_arg "Translation_cache.prepare: invalid widths";
  if not (List.mem 1 widths) then
    invalid_arg "Translation_cache.prepare: a scalar (width 1) specialization is required";
  let tr = Ptx_to_ir.frontend m ~kernel in
  let plan = Plan.compute tr.Ptx_to_ir.func ~local_decl_bytes:tr.Ptx_to_ir.local_decl_bytes in
  {
    kernel_name = kernel;
    scalar = tr.Ptx_to_ir.func;
    plan;
    shared_bytes = tr.Ptx_to_ir.shared_bytes;
    local_bytes = Plan.local_bytes plan ~local_decl_bytes:tr.Ptx_to_ir.local_decl_bytes;
    mode;
    affine;
    specialize_args;
    machine;
    optimize;
    widths;
    specializations = Hashtbl.create 4;
    compile_count = 0;
    verify;
  }

(** Get (or build) the specialization for exactly [ws] lanes.  With
    [params] (and the cache built with [specialize_args]), the scalar
    kernel is first specialized on the concrete argument values and the
    result is cached under the parameter block's digest. *)
let get (t : t) ?params ~ws () : entry =
  let params = if t.specialize_args then params else None in
  let key =
    ( ws,
      match params with
      | None -> ""
      | Some p -> Digest.to_hex (Digest.bytes (Mem.bytes p)) )
  in
  match Hashtbl.find_opt t.specializations key with
  | Some e -> e
  | None ->
      if not (List.mem ws t.widths) then
        invalid_arg (Fmt.str "no %d-wide specialization of %s" ws t.kernel_name);
      t.compile_count <- t.compile_count + 1;
      let scalar =
        match params with
        | None -> t.scalar
        | Some p ->
            let copy = Ir.copy_func t.scalar in
            ignore (Vekt_transform.Specialize.params copy ~params:p);
            copy
      in
      let vect = Vectorize.run ~mode:t.mode ~affine:t.affine ~plan:t.plan scalar ~ws in
      if t.optimize then ignore (Passes.optimize vect.Vectorize.func)
      else ignore (Dce.run vect.Vectorize.func);
      if t.verify then Verify.check_exn vect.Vectorize.func;
      let timing = Timing.analyze t.machine vect.Vectorize.func in
      let e =
        {
          vfunc = vect.Vectorize.func;
          timing;
          vect;
          static_instrs = Ir.size vect.Vectorize.func;
        }
      in
      Hashtbl.replace t.specializations key e;
      e

(** Largest available width not exceeding [n]. *)
let best_width (t : t) n = List.find (fun w -> w <= n) t.widths

let max_width (t : t) = List.hd t.widths

(** Entry IDs shared by all specializations of this kernel. *)
let entry_ids (t : t) = t.plan.Plan.entry_ids
