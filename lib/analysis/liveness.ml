(** Classic backward liveness dataflow over IR functions.

    Drives the yield-on-diverge transformation: live-out registers at a
    divergence site are spilled by the exit handler; live-in registers at an
    entry point are restored by its entry handler (paper Algorithms 3/4).
    Also reported as the "values restored per entry" statistic (Figure 8). *)

module Ir = Vekt_ir.Ir
module Ty = Vekt_ir.Ty


module ISet = Set.Make (Int)

type t = {
  live_in : (string, ISet.t) Hashtbl.t;
  live_out : (string, ISet.t) Hashtbl.t;
}

(** Per-block [gen] (upward-exposed uses) and [kill] (definitions). *)
let gen_kill (b : Ir.block) =
  let gen = ref ISet.empty and kill = ref ISet.empty in
  List.iter
    (fun { Ir.i; _ } ->
      List.iter (fun r -> if not (ISet.mem r !kill) then gen := ISet.add r !gen) (Ir.uses i);
      match Ir.def i with Some d -> kill := ISet.add d !kill | None -> ())
    b.insts;
  List.iter
    (fun r -> if not (ISet.mem r !kill) then gen := ISet.add r !gen)
    (Ir.term_uses b.term);
  (!gen, !kill)

let compute (f : Ir.func) : t =
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  let gk = Hashtbl.create 16 in
  List.iter
    (fun b ->
      Hashtbl.replace gk b.Ir.label (gen_kill b);
      Hashtbl.replace live_in b.Ir.label ISet.empty;
      Hashtbl.replace live_out b.Ir.label ISet.empty)
    (Ir.blocks f);
  (* Iterate to fixpoint; post-order-ish sweep converges fast on reducible
     kernels.  Unreachable blocks participate too (harmless). *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        let label = b.Ir.label in
        let out =
          List.fold_left
            (fun acc s -> ISet.union acc (Hashtbl.find live_in s))
            ISet.empty (Ir.successors b)
        in
        let gen, kill = Hashtbl.find gk label in
        let inn = ISet.union gen (ISet.diff out kill) in
        if not (ISet.equal out (Hashtbl.find live_out label)) then begin
          Hashtbl.replace live_out label out;
          changed := true
        end;
        if not (ISet.equal inn (Hashtbl.find live_in label)) then begin
          Hashtbl.replace live_in label inn;
          changed := true
        end)
      (List.rev (Ir.blocks f))
  done;
  { live_in; live_out }

let live_in t label = Option.value (Hashtbl.find_opt t.live_in label) ~default:ISet.empty
let live_out t label = Option.value (Hashtbl.find_opt t.live_out label) ~default:ISet.empty

(** Per-instruction liveness within one block, scanned backwards from the
    block's live-out set.  Returns, in instruction order, the set of
    registers live {e after} each instruction.  Used by the VM's register
    allocator to estimate pressure. *)
let per_instruction (t : t) (b : Ir.block) : ISet.t array =
  let n = List.length b.insts in
  let after = Array.make (max n 1) ISet.empty in
  let live = ref (live_out t b.Ir.label) in
  List.iter (fun r -> live := ISet.add r !live) (Ir.term_uses b.term);
  let insts = Array.of_list b.insts in
  for idx = n - 1 downto 0 do
    after.(idx) <- !live;
    let i = insts.(idx).Ir.i in
    (match Ir.def i with Some d -> live := ISet.remove d !live | None -> ());
    List.iter (fun r -> live := ISet.add r !live) (Ir.uses i)
  done;
  after

(** Maximum simultaneously-live register count anywhere in the function,
    weighted by [weight] (e.g. vector registers vs scalar). *)
let max_pressure ?(weight = fun _ -> 1) (f : Ir.func) (t : t) : int =
  let best = ref 0 in
  List.iter
    (fun b ->
      let after = per_instruction t b in
      Array.iter
        (fun s ->
          let p = ISet.fold (fun r acc -> acc + weight r) s 0 in
          if p > !best then best := p)
        after)
    (Ir.blocks f);
  !best
