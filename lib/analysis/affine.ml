(** Affine address analysis (the paper's §4 future-work optimization,
    after Collange et al.'s uniform/affine detection).

    Classifies each register as an affine function of the thread index:

      [Const c]   — the compile-time constant [c]
      [Uniform]   — the same (unknown) value in every thread of a warp
      [Affine s]  — [uniform + s * tid.x]
      [Unknown]   — anything else

    When warps are formed of consecutive [tid.x] threads (static warp
    formation), a load whose address is [Affine s] with [s] equal to the
    element size touches contiguous memory across the warp and can become
    a single vector load.

    Like {!Invariance}, the analysis is a flow-insensitive fixpoint over
    the non-SSA registers: a register's class is the join of all its
    definitions. *)

module Ir = Vekt_ir.Ir
module A = Vekt_ptx.Ast

type cls =
  | Bot  (** no definition seen yet (fixpoint bottom) *)
  | Const of int64
  | Uniform
  | Affine of int64
  | Unknown

let pp_cls fmt = function
  | Bot -> Fmt.string fmt "bot"
  | Const c -> Fmt.pf fmt "const %Ld" c
  | Uniform -> Fmt.string fmt "uniform"
  | Affine s -> Fmt.pf fmt "affine(+%Ld*tid)" s
  | Unknown -> Fmt.string fmt "unknown"

let equal_cls a b =
  match (a, b) with
  | Bot, Bot -> true
  | Const x, Const y -> Int64.equal x y
  | Uniform, Uniform | Unknown, Unknown -> true
  | Affine x, Affine y -> Int64.equal x y
  | _ -> false

(** Lattice join for merging multiple definitions of one register. *)
let join a b =
  match (a, b) with
  | x, y when equal_cls x y -> x
  | Bot, x | x, Bot -> x
  | Const _, Const _ -> Uniform
  | (Const _ | Uniform), (Const _ | Uniform) -> Uniform
  | _ -> Unknown

let add_cls a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Const x, Const y -> Const (Int64.add x y)
  | (Const _ | Uniform), (Const _ | Uniform) -> Uniform
  | Affine s, (Const _ | Uniform) | (Const _ | Uniform), Affine s -> Affine s
  | Affine x, Affine y -> Affine (Int64.add x y)
  | _ -> Unknown

let sub_cls a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Const x, Const y -> Const (Int64.sub x y)
  | (Const _ | Uniform), (Const _ | Uniform) -> Uniform
  | Affine s, (Const _ | Uniform) -> Affine s
  | (Const _ | Uniform), Affine s -> Affine (Int64.neg s)
  | Affine x, Affine y when Int64.equal x y -> Uniform
  | _ -> Unknown

let mul_cls a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Const x, Const y -> Const (Int64.mul x y)
  | Const c, Affine s | Affine s, Const c -> Affine (Int64.mul c s)
  | (Const _ | Uniform), (Const _ | Uniform) -> Uniform
  | _ -> Unknown

(** [bits] is the width of the shifted type: the in-range bound must match
    {!Vekt_ptx.Scalar_ops}' total-shift semantics (amount >= width yields
    0), and a 32-bit cap on 64-bit shifts would drop the [cvt.u64.u32] +
    [shl.b64] address idiom to [Unknown]. *)
let shl_cls ~bits a b =
  let in_range y = y >= 0L && y < Int64.of_int bits in
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Const x, Const y when in_range y -> Const (Int64.shift_left x (Int64.to_int y))
  | (Const _ | Uniform | Affine _), Const y when y >= Int64.of_int bits && y >= 0L ->
      (* total shift: every lane's value is exactly 0 *)
      Const 0L
  | Affine s, Const y when in_range y -> Affine (Int64.shift_left s (Int64.to_int y))
  | Uniform, Const _ -> Uniform
  | _ -> Unknown

(** Abstract transfer function: the class an instruction's destination
    takes given a lookup for its register operands. *)
let transfer ~(get : Ir.vreg -> cls) (i : Ir.instr) : cls =
  let of_operand = function
    | Ir.Imm (Vekt_ptx.Scalar_ops.I v, _) -> Const v
    | Ir.Imm (Vekt_ptx.Scalar_ops.F _, _) -> Uniform
    | Ir.R r -> get r
  in
  match i with
  | Ir.Ctx_read (_, Ir.Tid A.X, _) -> Affine 1L
  | Ir.Ctx_read
      ( _,
        (Ir.Ntid _ | Ir.Nctaid _ | Ir.Ctaid _ | Ir.Warp_width | Ir.Entry_id
        | Ir.Tid (A.Y | A.Z)),
        _ ) ->
      Uniform
  | Ir.Ctx_read (_, (Ir.Lane | Ir.Local_base), _) -> Unknown
  | Ir.Load ((A.Param | A.Const), _, _, base, _) -> (
      match of_operand base with Const _ | Uniform -> Uniform | _ -> Unknown)
  | Ir.Bin (A.Add, _, _, a, b2) -> add_cls (of_operand a) (of_operand b2)
  | Ir.Bin (A.Sub, _, _, a, b2) -> sub_cls (of_operand a) (of_operand b2)
  | Ir.Bin (A.Mul_lo, _, _, a, b2) -> mul_cls (of_operand a) (of_operand b2)
  | Ir.Bin (A.Shl, ty, _, a, b2) ->
      shl_cls ~bits:(8 * A.size_of ty.Vekt_ir.Ty.elt) (of_operand a) (of_operand b2)
  | Ir.Fma (_, _, a, b2, c) ->
      add_cls (mul_cls (of_operand a) (of_operand b2)) (of_operand c)
  | Ir.Mov (_, _, a) -> of_operand a
  | Ir.Cvt (dt, st, _, a)
    when A.is_integer dt.Vekt_ir.Ty.elt
         && A.is_integer st.Vekt_ir.Ty.elt
         && A.size_of dt.elt >= A.size_of st.elt ->
      of_operand a
  | i'
    when Ir.is_pure i' && (match i' with Ir.Restore _ -> false | _ -> true) -> (
      (* any pure function of uniform inputs is uniform *)
      let ops = List.map of_operand (List.map (fun r -> Ir.R r) (Ir.uses i')) in
      if List.exists (fun c -> c = Bot) ops then Bot
      else if List.for_all (function Const _ | Uniform -> true | _ -> false) ops then
        Uniform
      else Unknown)
  | _ -> Unknown

(** Class of each register in [f].

    Widening integer conversions preserve the affine form (addresses are
    built by [cvt.u64.u32] of small indices; a kernel whose index
    arithmetic wraps 32 bits is out of scope, like the paper's). *)
let fixpoint ?(clamp = Hashtbl.create 0) ?(multi_def_unknown = false) (f : Ir.func) :
    (Ir.vreg, cls) Hashtbl.t =
  let cls : (Ir.vreg, cls) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter (fun r c -> Hashtbl.replace cls r c) clamp;
  let def_count = Hashtbl.create 64 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun { Ir.i; _ } ->
          match Ir.def i with
          | Some d ->
              Hashtbl.replace def_count d
                (Option.value (Hashtbl.find_opt def_count d) ~default:0 + 1)
          | None -> ())
        b.Ir.insts)
    (Ir.blocks f);
  let fixed r =
    Hashtbl.mem clamp r
    || (multi_def_unknown
       && Option.value (Hashtbl.find_opt def_count r) ~default:0 > 1)
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun { Ir.i; _ } ->
          match Ir.def i with
          | Some d when multi_def_unknown && fixed d && not (Hashtbl.mem clamp d) ->
              Hashtbl.replace cls d Unknown
          | _ -> ())
        b.Ir.insts)
    (Ir.blocks f);
  (* bottom for registers that have definitions; a register with no
     definition anywhere reads its initial zero *)
  let get r =
    match Hashtbl.find_opt cls r with
    | Some c -> c
    | None ->
        if Option.value (Hashtbl.find_opt def_count r) ~default:0 > 0 then Bot
        else Const 0L
  in
  (* Start from bottom ([Const 0], the value of an uninitialized register)
     and iterate joins to a fixpoint. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun { Ir.i; _ } ->
            match Ir.def i with
            | None -> ()
            | Some d ->
                let v = transfer ~get i in
                if not (fixed d) then begin
                  let joined = join (get d) v in
                  if not (equal_cls joined (get d)) then begin
                    Hashtbl.replace cls d joined;
                    changed := true
                  end
                end)
          b.Ir.insts)
      (Ir.blocks f)
  done;
  cls

(** Classification that is sound in the presence of yield-on-diverge warp
    reformation.

    A register live into an entry point ("slotted") is restored per lane
    after reformation; lanes may have reached the entry along different
    paths, so such a value is trustworthy only if it is a fixed function of
    CTA-stable inputs — which a flow-insensitive analysis can guarantee
    only for chains of {e single-definition} registers.  We therefore run
    a strong pass in which every multiply-defined register is [Unknown],
    clamp the slotted registers to their strong classes, and re-run the
    ordinary (weak) fixpoint for everything else: within one region all
    lanes share their post-entry history, so the weak classes are valid at
    use sites there. *)
let classify ?(slotted = []) (f : Ir.func) : (Ir.vreg, cls) Hashtbl.t =
  let strong = fixpoint ~multi_def_unknown:true f in
  let clamp = Hashtbl.create 16 in
  List.iter
    (fun r ->
      Hashtbl.replace clamp r
        (Option.value (Hashtbl.find_opt strong r) ~default:Unknown))
    slotted;
  fixpoint ~clamp f

(** Class of an operand under a computed classification. *)
let operand_cls cls = function
  | Ir.Imm (Vekt_ptx.Scalar_ops.I v, _) -> Const v
  | Ir.Imm (Vekt_ptx.Scalar_ops.F _, _) -> Uniform
  | Ir.R r -> Option.value (Hashtbl.find_opt cls r) ~default:(Const 0L)
