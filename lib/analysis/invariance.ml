(** Thread-invariance analysis (paper §6.2).

    A value is {e thread-invariant} when every thread of a warp executing
    the same path computes the same value: constants, kernel parameters,
    grid/block dimensions, the CTA index (warps never span CTAs), and pure
    functions of invariant values.  Anything derived from the thread index,
    the lane number, thread-local memory or data loaded from mutable
    address spaces is {e variant}.

    The analysis is flow-insensitive over the non-SSA registers (a register
    is variant if {e any} of its definitions is variant), which is the
    conservative direction. *)

module Ir = Vekt_ir.Ir
module Ty = Vekt_ir.Ty


module ISet = Set.Make (Int)

(** Inherent variance of an instruction, ignoring its register operands:
    [`Variant] taints the destination, [`Invariant] leaves the decision to
    the operands.

    Under {e static warp formation} ([static_warps = true]) warps are
    consecutive [tid.x] threads of one CTA row, so [tid.y]/[tid.z] are
    warp-uniform and only [tid.x], the lane index and the thread-local base
    remain variant. *)
let inherent ?(static_warps = false) = function
  | Ir.Ctx_read (_, (Tid Vekt_ptx.Ast.X | Lane | Local_base), _) -> `Variant
  | Ir.Ctx_read (_, Tid (Vekt_ptx.Ast.Y | Vekt_ptx.Ast.Z), _) -> if static_warps then `Invariant else `Variant
  | Ir.Ctx_read (_, (Ntid _ | Nctaid _ | Ctaid _ | Warp_width | Entry_id), _) ->
      `Invariant
  | Ir.Load (sp, _, _, _, _) -> (
      match sp with
      | Vekt_ptx.Ast.Param | Vekt_ptx.Ast.Const -> `Invariant
      | Vekt_ptx.Ast.Global | Vekt_ptx.Ast.Shared | Vekt_ptx.Ast.Local -> `Variant)
  | Ir.Atomic _ -> `Variant
  | Ir.Restore _ -> `Variant
  | _ -> `Invariant

(** Registers that may hold thread-variant values anywhere in [f].
    [seed] adds registers the caller knows to be variant for reasons
    outside the dataflow (e.g. values restored per-lane at entry points);
    their taint propagates through the fixpoint. *)
let variant_regs ?(static_warps = false) ?(seed = ISet.empty) (f : Ir.func) : ISet.t =
  let variant = ref seed in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        List.iter
          (fun { Ir.i; _ } ->
            match Ir.def i with
            | None -> ()
            | Some d ->
                if not (ISet.mem d !variant) then
                  let tainted =
                    inherent ~static_warps i = `Variant
                    || List.exists (fun r -> ISet.mem r !variant) (Ir.uses i)
                  in
                  if tainted then begin
                    variant := ISet.add d !variant;
                    changed := true
                  end)
          b.Ir.insts)
      (Ir.blocks f)
  done;
  !variant

(** An instruction is thread-invariant when it computes the same value in
    every lane: pure, inherently invariant, and all register operands
    invariant. *)
let instr_invariant ?(static_warps = false) variants i =
  Ir.is_pure i
  && inherent ~static_warps i = `Invariant
  && List.for_all (fun r -> not (ISet.mem r variants)) (Ir.uses i)

(** Fraction of instructions in [f] that are thread-invariant — comparable
    to the ~15% of PTX operands Collange et al. report (paper §6.2). *)
let invariant_fraction (f : Ir.func) : float =
  let variants = variant_regs f in
  let total = ref 0 and inv = ref 0 in
  List.iter
    (fun b ->
      List.iter
        (fun { Ir.i; _ } ->
          incr total;
          if instr_invariant variants i then incr inv)
        b.Ir.insts)
    (Ir.blocks f);
  if !total = 0 then 0.0 else float_of_int !inv /. float_of_int !total

(** Uniform-branch detection: a conditional branch whose condition is
    thread-invariant can never diverge. *)
let uniform_branches (f : Ir.func) : string list =
  let variants = variant_regs f in
  List.filter_map
    (fun b ->
      match b.Ir.term with
      | Ir.Branch (Ir.R r, _, _) when not (ISet.mem r variants) -> Some b.Ir.label
      | Ir.Branch (Ir.Imm _, _, _) -> Some b.Ir.label
      | _ -> None)
    (Ir.blocks f)
