(** Dominator tree over IR functions (Cooper-Harvey-Kennedy iterative
    algorithm).  Used by loop detection and by CSE's safety check that a
    replacement definition dominates its new uses. *)

module Ir = Vekt_ir.Ir
module Ty = Vekt_ir.Ty


type t = {
  idom : (string, string) Hashtbl.t;  (** immediate dominator; entry maps to itself *)
  rpo_index : (string, int) Hashtbl.t;
}

let compute (f : Ir.func) : t =
  let rpo = Ir.reverse_postorder f in
  let rpo_index = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.replace rpo_index l i) rpo;
  let preds = Ir.predecessors f in
  let idom = Hashtbl.create 16 in
  Hashtbl.replace idom f.Ir.entry f.Ir.entry;
  let intersect a b =
    let rec go a b =
      if String.equal a b then a
      else
        let ia = Hashtbl.find rpo_index a and ib = Hashtbl.find rpo_index b in
        if ia > ib then go (Hashtbl.find idom a) b else go a (Hashtbl.find idom b)
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if not (String.equal l f.Ir.entry) then begin
          let ps =
            Option.value (Hashtbl.find_opt preds l) ~default:[]
            |> List.filter (fun p -> Hashtbl.mem idom p)
          in
          match ps with
          | [] -> ()
          | p0 :: rest ->
              let new_idom = List.fold_left intersect p0 rest in
              if Hashtbl.find_opt idom l <> Some new_idom then begin
                Hashtbl.replace idom l new_idom;
                changed := true
              end
        end)
      rpo
  done;
  { idom; rpo_index }

(** [dominates t a b] iff block [a] dominates block [b] (reflexive).
    Unreachable blocks dominate nothing and are dominated by nothing. *)
let dominates (t : t) a b =
  if not (Hashtbl.mem t.idom b) then false
  else
    let rec walk b =
      if String.equal a b then true
      else
        let p = Hashtbl.find t.idom b in
        if String.equal p b then false else walk p
    in
    walk b

let idom (t : t) b =
  match Hashtbl.find_opt t.idom b with
  | Some p when not (String.equal p b) -> Some p
  | _ -> None

(** Back edges [(src, dst)] where [dst] dominates [src]: natural-loop
    headers, reported in kernel statistics. *)
let back_edges (f : Ir.func) (t : t) =
  List.concat_map
    (fun b ->
      List.filter_map
        (fun s -> if dominates t s b.Ir.label then Some (b.Ir.label, s) else None)
        (Ir.successors b))
    (Ir.blocks f)
